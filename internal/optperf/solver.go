package optperf

import (
	"fmt"
	"math"
	"sort"
)

// minLocalBatch is the smallest local batch a participating node may get:
// synchronized data parallelism requires every node to contribute each step.
const minLocalBatch = 1

// SolveStats counts the work Algorithm 1 performed; the trainer charges
// these against the epoch as scheduling overhead (Table 6).
type SolveStats struct {
	// LinearSolves is the number of equalization systems solved.
	LinearSolves int
	// BoundarySearchSteps is the number of mixed-bottleneck probes.
	BoundarySearchSteps int
	// WaterfillFallbacks counts how often the reference solver was needed.
	WaterfillFallbacks int
}

func (s *SolveStats) add(o SolveStats) {
	s.LinearSolves += o.LinearSolves
	s.BoundarySearchSteps += o.BoundarySearchSteps
	s.WaterfillFallbacks += o.WaterfillFallbacks
}

// Solve computes OptPerf and the optimal local batch sizes for total batch
// size B using Algorithm 1, then rounds to a feasible integer allocation.
func Solve(model ClusterModel, totalBatch int) (Plan, error) {
	p, _, err := solveWithHint(model, totalBatch, nil)
	return p, err
}

// SolveAudited is Solve with the opt-in audit mode: the returned plan is
// verified against the paper's optimality conditions (see AuditPlan). In
// AuditStrict mode any violation becomes an error wrapping ErrAuditFailed;
// in AuditAdvisory mode violations are only recorded in the report. A zero
// Tolerances value selects the defaults.
func SolveAudited(model ClusterModel, totalBatch int, mode AuditMode, tol Tolerances) (Plan, AuditReport, error) {
	plan, report, _, err := solveWithHintAudited(model, totalBatch, nil, mode, tol)
	return plan, report, err
}

// solveWithHintAudited is solveWithHint with the opt-in audit mode.
func solveWithHintAudited(model ClusterModel, totalBatch int, hint *int, mode AuditMode, tol Tolerances) (Plan, AuditReport, SolveStats, error) {
	plan, stats, err := solveWithHint(model, totalBatch, hint)
	if err != nil || mode == AuditOff {
		return plan, AuditReport{}, stats, err
	}
	report := AuditPlan(model, plan, tol)
	if mode == AuditStrict {
		if aerr := report.Err(); aerr != nil {
			return plan, report, stats, aerr
		}
	}
	return plan, report, stats, nil
}

// solveWithHint runs the full pipeline, optionally warm-starting the
// mixed-bottleneck boundary search, and reports solver work.
func solveWithHint(model ClusterModel, totalBatch int, hint *int) (Plan, SolveStats, error) {
	var stats SolveStats
	if err := model.Validate(); err != nil {
		return Plan{}, stats, err
	}
	n := len(model.Nodes)
	if totalBatch < n*minLocalBatch {
		return Plan{}, stats, fmt.Errorf("%w: total batch %d below %d nodes x min %d", ErrInfeasible, totalBatch, n, minLocalBatch)
	}
	if capTotal, bounded := model.Capacity(); bounded && totalBatch > capTotal {
		return Plan{}, stats, fmt.Errorf("%w: total batch %d exceeds capacity %d", ErrInfeasible, totalBatch, capTotal)
	}

	cont, contTime := solveContinuous(model, float64(totalBatch), hint, &stats)

	batches, err := roundAllocation(model, cont, totalBatch)
	if err != nil {
		return Plan{}, stats, err
	}
	localSearch(model, batches)

	plan := Plan{
		TotalBatch:     totalBatch,
		Batches:        batches,
		Ratios:         make([]float64, n),
		Time:           model.PredictTime(batches),
		ContinuousTime: contTime,
		States:         make([]Bottleneck, n),
	}
	for i, b := range batches {
		plan.Ratios[i] = float64(b) / float64(totalBatch)
		plan.States[i] = model.NodeState(i, float64(b))
	}
	return plan, stats, nil
}

// solveContinuous finds the relaxed optimum with caps and minimums handled
// by an active-set (waterfilling) outer loop around Algorithm 1.
func solveContinuous(model ClusterModel, totalBatch float64, hint *int, stats *SolveStats) (b []float64, optPerf float64) {
	n := len(model.Nodes)
	b = make([]float64, n)
	pinned := make([]bool, n)
	remaining := totalBatch
	free := make([]int, 0, n)
	for i := 0; i < n; i++ {
		free = append(free, i)
	}

	for len(free) > 0 {
		sub, subStats, ok := algorithm1(model, free, remaining, hint)
		stats.add(subStats)
		if !ok {
			// Inconsistent boundary search (can happen with extreme
			// coefficient spreads): fall back to the provably optimal
			// waterfill on the per-node time envelope.
			sub = waterfill(model, free, remaining)
			stats.WaterfillFallbacks++
		}
		// Pin violators of box constraints and re-solve for the rest.
		var repinned bool
		// Handle cap violations first: they free up batch for others.
		for idx, i := range free {
			if cap := model.Nodes[i].cap(); sub[idx] > cap {
				b[i] = cap
				pinned[i] = true
				remaining -= cap
				repinned = true
			}
		}
		if !repinned {
			for idx, i := range free {
				if sub[idx] < minLocalBatch {
					b[i] = minLocalBatch
					pinned[i] = true
					remaining -= minLocalBatch
					repinned = true
				}
			}
		}
		if !repinned {
			for idx, i := range free {
				b[i] = sub[idx]
			}
			break
		}
		next := free[:0]
		for _, i := range free {
			if !pinned[i] {
				next = append(next, i)
			}
		}
		free = next
	}

	return b, model.PredictTimeFloat(b)
}

// algorithm1 is the paper's overlap-state search over the given node subset
// with no box constraints. It returns the equalized allocation, or ok=false
// when the boundary search cannot find a consistent partition.
func algorithm1(model ClusterModel, idx []int, total float64, hint *int) (b []float64, stats SolveStats, ok bool) {
	k := len(idx)
	gamma, to := model.Gamma, model.To

	computeD := func(i int) (d, c float64) { // equal t_compute system
		nm := model.Nodes[i]
		return nm.Q + nm.K, nm.S + nm.M
	}
	commD := func(i int) (d, c float64) { // equal syncStart system
		nm := model.Nodes[i]
		return nm.Q + gamma*nm.K, nm.S + gamma*nm.M
	}

	solveEqual := func(ds, cs []float64) (mu float64, bs []float64) {
		stats.LinearSolves++
		var sumInvD, sumCD float64
		for i := range ds {
			sumInvD += 1 / ds[i]
			sumCD += cs[i] / ds[i]
		}
		mu = (total + sumCD) / sumInvD
		bs = make([]float64, len(ds))
		for i := range ds {
			bs[i] = (mu - cs[i]) / ds[i]
		}
		return mu, bs
	}

	computeBound := func(i int, bi float64) bool {
		return (1-gamma)*model.Nodes[i].P(bi) >= to
	}

	ds := make([]float64, k)
	cs := make([]float64, k)
	check1 := func() (bs []float64, valid bool) { // all compute-bottleneck
		for j, i := range idx {
			ds[j], cs[j] = computeD(i)
		}
		_, bs = solveEqual(ds, cs)
		for j, i := range idx {
			if !computeBound(i, bs[j]) {
				return bs, false
			}
		}
		return bs, true
	}
	check2 := func() (bs []float64, valid bool) { // all comm-bottleneck
		for j, i := range idx {
			ds[j], cs[j] = commD(i)
		}
		_, bs = solveEqual(ds, cs)
		for j, i := range idx {
			if computeBound(i, bs[j]) {
				return bs, false
			}
		}
		return bs, true
	}

	// Section 4.5 warm start: begin from the previous candidate's overlap
	// state. A hint of 0 (all communication-bottleneck) reverses the check
	// order; either way both checks run before the mixed search so their
	// agreement classification stays available.
	var b1, b2 []float64
	var ok1, ok2 bool
	if hint != nil && *hint == 0 {
		if b2, ok2 = check2(); ok2 {
			return b2, stats, true
		}
		if b1, ok1 = check1(); ok1 {
			return b1, stats, true
		}
	} else {
		if b1, ok1 = check1(); ok1 {
			return b1, stats, true
		}
		if b2, ok2 = check2(); ok2 {
			return b2, stats, true
		}
	}

	// Mixed bottleneck. Nodes that agree across both checks keep that
	// state; the outliers are ordered by how compute-leaning they are at
	// the Check-1 solution and a boundary is searched among them.
	type entry struct {
		node  int // index into idx
		score float64
	}
	var fixedCompute, fixedComm []int
	var outliers []entry
	for j, i := range idx {
		c1 := computeBound(i, b1[j])
		c2 := computeBound(i, b2[j])
		switch {
		case c1 && c2:
			fixedCompute = append(fixedCompute, j)
		case !c1 && !c2:
			fixedComm = append(fixedComm, j)
		default:
			outliers = append(outliers, entry{node: j, score: (1-gamma)*model.Nodes[i].P(b1[j]) - to})
		}
	}
	sort.Slice(outliers, func(a, b int) bool { return outliers[a].score > outliers[b].score })

	trySplit := func(t int) (bs []float64, valid bool, wantMore bool) {
		stats.BoundarySearchSteps++
		for j := range idx {
			ds[j], cs[j] = commD(idx[j])
			cs[j] += to // comm side solves syncStart + To = mu
		}
		assignCompute := make([]bool, k)
		for _, j := range fixedCompute {
			assignCompute[j] = true
		}
		for _, e := range outliers[:t] {
			assignCompute[e.node] = true
		}
		for j := range idx {
			if assignCompute[j] {
				ds[j], cs[j] = computeD(idx[j])
			}
		}
		mu, bs := solveEqual(ds, cs)
		_ = mu
		valid = true
		computeViolated, commViolated := false, false
		for j, i := range idx {
			isComputeSide := assignCompute[j]
			actual := computeBound(i, bs[j])
			if isComputeSide && !actual {
				computeViolated = true
				valid = false
			}
			if !isComputeSide && actual {
				commViolated = true
				valid = false
			}
		}
		// Too many compute-assigned nodes -> shrink t; too few -> grow.
		wantMore = commViolated && !computeViolated
		return bs, valid, wantMore
	}

	lo, hi := 0, len(outliers)
	if hint != nil {
		t := *hint
		if t < lo {
			t = lo
		}
		if t > hi {
			t = hi
		}
		if bs, valid, _ := trySplit(t); valid {
			return bs, stats, true
		}
	}
	for lo <= hi {
		t := (lo + hi) / 2
		bs, valid, wantMore := trySplit(t)
		if valid {
			return bs, stats, true
		}
		if wantMore {
			lo = t + 1
		} else {
			hi = t - 1
		}
	}
	// Exhaustive scan as a last resort before the waterfill fallback.
	for t := 0; t <= len(outliers); t++ {
		if bs, valid, _ := trySplit(t); valid {
			return bs, stats, true
		}
	}
	return nil, stats, false
}

// waterfill equalizes each node's batch-time envelope
// f_i(b) = max(compute path, comm path) by bisection on the target time.
// It is the provably optimal reference solver (each f_i is increasing and
// convex, so equalized times minimize the maximum).
func waterfill(model ClusterModel, idx []int, total float64) []float64 {
	tcomm := model.TComm()
	batchAt := func(i int, tau float64) float64 {
		nm := model.Nodes[i]
		// compute path: (Q+K) b + S + M + Tu = tau
		bCompute := (tau - model.Tu - nm.S - nm.M) / (nm.Q + nm.K)
		// comm path: (Q + gamma K) b + S + gamma M + TComm = tau
		bComm := (tau - tcomm - nm.S - model.Gamma*nm.M) / (nm.Q + model.Gamma*nm.K)
		return math.Min(bCompute, bComm)
	}
	sumAt := func(tau float64) float64 {
		s := 0.0
		for _, i := range idx {
			s += math.Max(batchAt(i, tau), 0)
		}
		return s
	}
	lo, hi := 0.0, 1.0
	for sumAt(hi) < total {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if sumAt(mid) < total {
			lo = mid
		} else {
			hi = mid
		}
	}
	out := make([]float64, len(idx))
	for j, i := range idx {
		out[j] = math.Max(batchAt(i, hi), 0)
	}
	// Normalize the bisection residue across nodes with slack toward their
	// box bounds. Dumping it all on one node can push that node above its
	// cap or below minLocalBatch when the residue is large (bisection hit
	// its range limit on an extreme model).
	diff := total
	for _, v := range out {
		diff -= v
	}
	distributeResidue(model, idx, out, diff)
	return out
}

// distributeResidue spreads diff over out, adding only up to each node's
// cap and removing only down to minLocalBatch. Any residue that no node
// can absorb is left undistributed for the caller's box-constraint pinning
// to resolve.
func distributeResidue(model ClusterModel, idx []int, out []float64, diff float64) {
	for pass := 0; pass < 4 && math.Abs(diff) > 1e-12; pass++ {
		slacks := make([]float64, len(out))
		var slackSum float64
		unbounded := 0
		for j, i := range idx {
			if diff > 0 {
				slacks[j] = model.Nodes[i].cap() - out[j]
			} else {
				slacks[j] = out[j] - minLocalBatch
			}
			if slacks[j] < 0 {
				slacks[j] = 0
			}
			if math.IsInf(slacks[j], 1) {
				unbounded++
			} else {
				slackSum += slacks[j]
			}
		}
		if diff > 0 && unbounded > 0 {
			// Uncapped nodes absorb a surplus directly.
			share := diff / float64(unbounded)
			for j := range slacks {
				if math.IsInf(slacks[j], 1) {
					out[j] += share
				}
			}
			return
		}
		if slackSum <= 0 {
			return // no node can absorb it; the caller's pinning resolves it
		}
		want := diff
		for j := range out {
			if slacks[j] <= 0 {
				continue
			}
			d := want * slacks[j] / slackSum
			if math.Abs(d) > slacks[j] {
				d = math.Copysign(slacks[j], d)
			}
			out[j] += d
			diff -= d
		}
	}
}

// roundAllocation converts a continuous allocation to integers that sum to
// totalBatch, respect caps, and keep every node at minLocalBatch or more,
// using largest-remainder apportionment.
func roundAllocation(model ClusterModel, cont []float64, totalBatch int) ([]int, error) {
	n := len(cont)
	batches := make([]int, n)
	assigned := 0
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, 0, n)
	for i, v := range cont {
		fl := int(math.Floor(v))
		if fl < minLocalBatch {
			fl = minLocalBatch
		}
		if c := model.Nodes[i].cap(); float64(fl) > c {
			fl = int(c)
		}
		batches[i] = fl
		assigned += fl
		// Priority is the continuous value minus what the node already
		// holds: a node clamped up to the minimum got more than it wanted
		// (negative priority, loses first), a node clamped down to its cap
		// wants far more (large priority, loses last).
		fracs = append(fracs, frac{i: i, f: v - float64(fl)})
	}
	sort.Slice(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
	// Distribute any shortfall to the largest remainders (respecting caps);
	// remove any overshoot from the smallest remainders (respecting mins).
	for assigned < totalBatch {
		progressed := false
		for _, fr := range fracs {
			if assigned == totalBatch {
				break
			}
			if float64(batches[fr.i]+1) <= model.Nodes[fr.i].cap() {
				batches[fr.i]++
				assigned++
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("%w: rounding cannot reach total %d", ErrInfeasible, totalBatch)
		}
	}
	for assigned > totalBatch {
		progressed := false
		for j := len(fracs) - 1; j >= 0; j-- {
			if assigned == totalBatch {
				break
			}
			i := fracs[j].i
			if batches[i] > minLocalBatch {
				batches[i]--
				assigned--
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("%w: rounding cannot reduce to total %d", ErrInfeasible, totalBatch)
		}
	}
	return batches, nil
}

// localSearch greedily moves single samples off the critical node while it
// strictly improves the predicted batch time. A critical node sitting at
// minLocalBatch cannot donate — its time is a fixed floor on Eq. 7 — but
// that must not end the search: ties are broken so the immovable node is
// frozen out and an equally slow movable node still gets to donate,
// keeping the rest of the cluster equalized.
func localSearch(model ClusterModel, batches []int) {
	n := len(batches)
	frozen := make([]bool, n)
	for iter := 0; iter < 4*n; iter++ {
		// Find the critical (slowest) unfrozen node. Ties break toward
		// nodes at the minimum so they freeze first and movable tied nodes
		// keep optimizing.
		worst, worstT := -1, -1.0
		for i, b := range batches {
			if frozen[i] {
				continue
			}
			t := model.NodeTime(i, float64(b))
			tied := worst >= 0 && t >= worstT*(1-1e-12) &&
				b <= minLocalBatch && batches[worst] > minLocalBatch
			if t > worstT || tied {
				worst, worstT = i, t
			}
		}
		if worst < 0 {
			return
		}
		if batches[worst] <= minLocalBatch {
			frozen[worst] = true
			continue
		}
		bestJ, bestT := -1, worstT
		for j := range batches {
			if j == worst || frozen[j] || float64(batches[j]+1) > model.Nodes[j].cap() {
				continue
			}
			batches[worst]--
			batches[j]++
			if t := predictUnfrozen(model, batches, frozen); t < bestT {
				bestJ, bestT = j, t
			}
			batches[worst]++
			batches[j]--
		}
		if bestJ < 0 {
			return
		}
		batches[worst]--
		batches[bestJ]++
	}
}

// predictUnfrozen is Eq. 7 restricted to the unfrozen nodes: frozen nodes
// are min-pinned maxima whose time no move can change.
func predictUnfrozen(model ClusterModel, batches []int, frozen []bool) float64 {
	worst := 0.0
	for i, b := range batches {
		if frozen[i] {
			continue
		}
		if t := model.NodeTime(i, float64(b)); t > worst {
			worst = t
		}
	}
	return worst
}

// ProportionalAllocation implements Eq. 8: before performance models exist
// (the first two epochs), local batches are assigned inversely proportional
// to the measured per-sample compute times. Caps may be nil for unlimited.
func ProportionalAllocation(perSampleTime []float64, totalBatch int, caps []int) ([]int, error) {
	n := len(perSampleTime)
	if n == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrInfeasible)
	}
	if totalBatch < n*minLocalBatch {
		return nil, fmt.Errorf("%w: total batch %d below %d nodes", ErrInfeasible, totalBatch, n)
	}
	weights := make([]float64, n)
	var sumW float64
	for i, t := range perSampleTime {
		if t <= 0 {
			return nil, fmt.Errorf("optperf: node %d has non-positive per-sample time %v", i, t)
		}
		weights[i] = 1 / t
		sumW += weights[i]
	}
	cont := make([]float64, n)
	for i := range cont {
		cont[i] = weights[i] / sumW * float64(totalBatch)
	}
	m := ClusterModel{Nodes: make([]NodeModel, n), Gamma: 0.5}
	for i := range m.Nodes {
		m.Nodes[i] = NodeModel{Q: perSampleTime[i], K: perSampleTime[i], MaxBatch: 0}
		if caps != nil {
			m.Nodes[i].MaxBatch = caps[i]
		}
	}
	return roundAllocation(m, cont, totalBatch)
}
