package optperf

import (
	"errors"
	"math"
	"testing"

	"cannikin/internal/rng"
)

// threeNodeModel is a small heterogeneous cluster: one fast, one medium,
// one slow node (speed ratios roughly 1 : 2 : 4), like the paper's
// Cluster A.
func threeNodeModel(to, tu, gamma float64) ClusterModel {
	return ClusterModel{
		Nodes: []NodeModel{
			{Q: 0.0002, S: 0.004, K: 0.0004, M: 0.002},
			{Q: 0.0004, S: 0.005, K: 0.0008, M: 0.003},
			{Q: 0.0008, S: 0.006, K: 0.0016, M: 0.004},
		},
		Gamma: gamma,
		To:    to,
		Tu:    tu,
	}
}

func TestValidate(t *testing.T) {
	good := threeNodeModel(0.01, 0.005, 0.2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := good
	bad.Gamma = 0
	if bad.Validate() == nil {
		t.Fatal("gamma 0 accepted")
	}
	bad = good
	bad.Gamma = 1.5
	if bad.Validate() == nil {
		t.Fatal("gamma > 1 accepted")
	}
	bad = good
	bad.To = -1
	if bad.Validate() == nil {
		t.Fatal("negative To accepted")
	}
	bad = good
	bad.Nodes = nil
	if bad.Validate() == nil {
		t.Fatal("empty model accepted")
	}
	bad = threeNodeModel(0.01, 0.005, 0.2)
	bad.Nodes[0].K = 0
	if bad.Validate() == nil {
		t.Fatal("zero K accepted")
	}
}

func TestNodeTimeIsMaxOfPaths(t *testing.T) {
	m := threeNodeModel(0.01, 0.005, 0.25)
	for i := range m.Nodes {
		for _, b := range []float64{1, 10, 100} {
			compute := m.Nodes[i].Compute(b) + m.Tu
			comm := m.SyncStart(i, b) + m.TComm()
			want := math.Max(compute, comm)
			if got := m.NodeTime(i, b); got != want {
				t.Fatalf("node %d b=%v: NodeTime %v != max(%v, %v)", i, b, got, compute, comm)
			}
		}
	}
}

func TestNodeStateThreshold(t *testing.T) {
	m := threeNodeModel(0.01, 0.005, 0.25)
	// (1-γ)P(b) >= To  <=>  0.75*(K b + M) >= 0.01.
	n := m.Nodes[0] // K=0.0004, M=0.002
	bThresh := (m.To/(1-m.Gamma) - n.M) / n.K
	if got := m.NodeState(0, bThresh+1); got != ComputeBound {
		t.Fatalf("above threshold: %v", got)
	}
	if got := m.NodeState(0, bThresh-1); got != CommBound {
		t.Fatalf("below threshold: %v", got)
	}
}

func TestBottleneckString(t *testing.T) {
	if ComputeBound.String() != "compute" || CommBound.String() != "comm" {
		t.Fatal("Bottleneck strings wrong")
	}
	if Bottleneck(0).String() == "" {
		t.Fatal("unknown bottleneck should still render")
	}
}

func TestAllComputeBottleneckEqualizesComputeTime(t *testing.T) {
	// With To = 0 every node is compute-bottleneck; OptPerf equalizes
	// t_compute (Appendix A.1).
	m := threeNodeModel(0, 0.005, 0.25)
	plan, err := mustAuditedSolve(t, m, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range plan.States {
		if s != ComputeBound {
			t.Fatalf("node %d state %v, want compute", i, s)
		}
	}
	// Continuous equalization: check per-node compute times are close for
	// the integer solution (within one sample's worth of time).
	t0 := m.Nodes[0].Compute(float64(plan.Batches[0]))
	for i := 1; i < 3; i++ {
		ti := m.Nodes[i].Compute(float64(plan.Batches[i]))
		slack := m.Nodes[i].Q + m.Nodes[i].K // one sample of drift
		if math.Abs(ti-t0) > 2*slack+1e-9 {
			t.Fatalf("compute times not equalized: %v vs %v", ti, t0)
		}
	}
	// Faster node gets more work.
	if !(plan.Batches[0] > plan.Batches[1] && plan.Batches[1] > plan.Batches[2]) {
		t.Fatalf("batches not ordered by speed: %v", plan.Batches)
	}
}

func TestAllCommBottleneckEqualizesSyncStart(t *testing.T) {
	// Huge To forces every node into the communication-bottleneck pattern;
	// OptPerf equalizes syncStart (Appendix A.2).
	m := threeNodeModel(1.0, 0.05, 0.25)
	plan, err := mustAuditedSolve(t, m, 60)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range plan.States {
		if s != CommBound {
			t.Fatalf("node %d state %v, want comm", i, s)
		}
	}
	s0 := m.SyncStart(0, float64(plan.Batches[0]))
	for i := 1; i < 3; i++ {
		si := m.SyncStart(i, float64(plan.Batches[i]))
		slack := m.Nodes[i].Q + m.Gamma*m.Nodes[i].K
		if math.Abs(si-s0) > 2*slack+1e-9 {
			t.Fatalf("syncStarts not equalized: %v vs %v", si, s0)
		}
	}
}

func TestMixedBottleneckGeneralCase(t *testing.T) {
	// Pick To so that fast nodes at their (large) share are
	// compute-bottleneck while slow nodes are comm-bottleneck.
	// Backprop-heavy nodes end up compute-bottleneck (large (1−γ)P_i);
	// forward-heavy nodes end up communication-bottleneck.
	m := ClusterModel{
		Nodes: []NodeModel{
			{Q: 0.00005, S: 0.001, K: 0.0008, M: 0.002}, // backprop heavy
			{Q: 0.0001, S: 0.001, K: 0.0009, M: 0.002},
			{Q: 0.0009, S: 0.004, K: 0.0002, M: 0.001}, // forward heavy
			{Q: 0.0012, S: 0.004, K: 0.0002, M: 0.001},
		},
		Gamma: 0.2,
		To:    0.020,
		Tu:    0.005,
	}
	plan, err := mustAuditedSolve(t, m, 200)
	if err != nil {
		t.Fatal(err)
	}
	nCompute := plan.NumComputeBound()
	if nCompute == 0 || nCompute == len(m.Nodes) {
		t.Fatalf("expected mixed bottleneck, got %d/%d compute-bound (batches %v)", nCompute, len(m.Nodes), plan.Batches)
	}
	// Paper's general-case conditions: compute-bottleneck nodes share
	// t_compute, comm-bottleneck nodes share syncStart, and
	// t_compute' = syncStart' + To.
	var tComp, sStart []float64
	for i, s := range plan.States {
		b := float64(plan.Batches[i])
		if s == ComputeBound {
			tComp = append(tComp, m.Nodes[i].Compute(b))
		} else {
			sStart = append(sStart, m.SyncStart(i, b))
		}
	}
	for _, v := range tComp[1:] {
		if math.Abs(v-tComp[0]) > 0.01*tComp[0]+0.005 {
			t.Fatalf("compute-side times not equalized: %v", tComp)
		}
	}
	for _, v := range sStart[1:] {
		if math.Abs(v-sStart[0]) > 0.01*sStart[0]+0.005 {
			t.Fatalf("comm-side syncStarts not equalized: %v", sStart)
		}
	}
	if math.Abs(tComp[0]-(sStart[0]+m.To)) > 0.05*tComp[0] {
		t.Fatalf("boundary condition violated: t_compute %v vs syncStart+To %v", tComp[0], sStart[0]+m.To)
	}
}

func TestSolveBeatsBruteForce(t *testing.T) {
	// Exhaustively enumerate every integer allocation on a 3-node cluster
	// and confirm the solver matches the true optimum.
	models := map[string]ClusterModel{
		"compute-bound": threeNodeModel(0.0005, 0.0002, 0.25),
		"comm-bound":    threeNodeModel(0.5, 0.05, 0.25),
		"mixed":         threeNodeModel(0.012, 0.004, 0.2),
	}
	for name, m := range models {
		const B = 48
		best := math.Inf(1)
		for b0 := 1; b0 <= B-2; b0++ {
			for b1 := 1; b1 <= B-b0-1; b1++ {
				b2 := B - b0 - b1
				if t := m.PredictTime([]int{b0, b1, b2}); t < best {
					best = t
				}
			}
		}
		plan, err := mustAuditedSolve(t, m, B)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if plan.Time > best*(1+1e-9) {
			t.Errorf("%s: solver time %v > brute-force optimum %v (batches %v)", name, plan.Time, best, plan.Batches)
		}
		if plan.ContinuousTime > plan.Time+1e-12 {
			t.Errorf("%s: continuous bound %v exceeds integer time %v", name, plan.ContinuousTime, plan.Time)
		}
	}
}

func TestSolveOptimalAgainstRandomAllocations(t *testing.T) {
	src := rng.New(42)
	for trial := 0; trial < 60; trial++ {
		n := 2 + src.Intn(10)
		nodes := make([]NodeModel, n)
		for i := range nodes {
			speed := 1.0 + 4*src.Float64() // 1x..5x heterogeneity
			nodes[i] = NodeModel{
				Q: 0.0002 * speed,
				S: 0.002 + 0.004*src.Float64(),
				K: 0.0004 * speed,
				M: 0.001 + 0.003*src.Float64(),
			}
		}
		m := ClusterModel{
			Nodes: nodes,
			Gamma: 0.05 + 0.5*src.Float64(),
			To:    0.03 * src.Float64(),
			Tu:    0.01 * src.Float64(),
		}
		B := n * (2 + src.Intn(40))
		plan, err := mustAuditedSolve(t, m, B)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sum := 0
		for _, b := range plan.Batches {
			sum += b
			if b < 1 {
				t.Fatalf("trial %d: batch below minimum: %v", trial, plan.Batches)
			}
		}
		if sum != B {
			t.Fatalf("trial %d: batches sum %d != %d", trial, sum, B)
		}
		// Random competing allocations must never beat the plan.
		for r := 0; r < 40; r++ {
			alloc := randomAllocation(src, n, B)
			if tr := m.PredictTime(alloc); tr < plan.Time*(1-1e-9) {
				t.Fatalf("trial %d: random allocation %v time %v beats plan %v time %v",
					trial, alloc, tr, plan.Batches, plan.Time)
			}
		}
	}
}

func randomAllocation(src *rng.Source, n, total int) []int {
	alloc := make([]int, n)
	for i := range alloc {
		alloc[i] = 1
	}
	for k := 0; k < total-n; k++ {
		alloc[src.Intn(n)]++
	}
	return alloc
}

func TestSolveRespectsCaps(t *testing.T) {
	m := threeNodeModel(0.01, 0.005, 0.25)
	m.Nodes[0].MaxBatch = 20 // fast node would normally take far more
	plan, err := mustAuditedSolve(t, m, 120)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range plan.Batches {
		if c := m.Nodes[i].MaxBatch; c > 0 && b > c {
			t.Fatalf("node %d batch %d exceeds cap %d", i, b, c)
		}
	}
	if plan.Batches[0] != 20 {
		t.Fatalf("fast node should saturate its cap: %v", plan.Batches)
	}
}

func TestSolveInfeasible(t *testing.T) {
	m := threeNodeModel(0.01, 0.005, 0.25)
	if _, err := Solve(m, 2); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("B < n: err = %v", err)
	}
	for i := range m.Nodes {
		m.Nodes[i].MaxBatch = 10
	}
	if _, err := Solve(m, 31); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("B > capacity: err = %v", err)
	}
	if _, err := Solve(m, 30); err != nil {
		t.Fatalf("B == capacity should be feasible: %v", err)
	}
}

func TestHomogeneousClusterEvenSplit(t *testing.T) {
	m := ClusterModel{
		Nodes: []NodeModel{
			{Q: 0.0003, S: 0.004, K: 0.0006, M: 0.002},
			{Q: 0.0003, S: 0.004, K: 0.0006, M: 0.002},
			{Q: 0.0003, S: 0.004, K: 0.0006, M: 0.002},
			{Q: 0.0003, S: 0.004, K: 0.0006, M: 0.002},
		},
		Gamma: 0.25,
		To:    0.01,
		Tu:    0.004,
	}
	plan, err := mustAuditedSolve(t, m, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range plan.Batches {
		if b != 32 {
			t.Fatalf("homogeneous cluster should split evenly: %v", plan.Batches)
		}
	}
}

func TestRatiosSumToOne(t *testing.T) {
	m := threeNodeModel(0.01, 0.004, 0.2)
	plan, err := mustAuditedSolve(t, m, 100)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range plan.Ratios {
		sum += r
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("ratios sum %v", sum)
	}
}

func TestLargerBatchesMoreComputeBound(t *testing.T) {
	// Section 4.5: as the total batch grows, nodes move from comm- to
	// compute-bottleneck; the count must be monotone non-decreasing.
	m := threeNodeModel(0.015, 0.005, 0.15)
	prev := -1
	for _, b := range []int{12, 30, 60, 120, 240, 480, 960} {
		plan, err := mustAuditedSolve(t, m, b)
		if err != nil {
			t.Fatal(err)
		}
		if plan.NumComputeBound() < prev {
			t.Fatalf("compute-bound count decreased at B=%d: %d < %d", b, plan.NumComputeBound(), prev)
		}
		prev = plan.NumComputeBound()
	}
	if prev != 3 {
		t.Fatalf("largest batch should make all nodes compute-bound, got %d", prev)
	}
}

func TestProportionalAllocation(t *testing.T) {
	// Eq. 8: node twice as fast gets twice the batch.
	b, err := ProportionalAllocation([]float64{0.001, 0.002, 0.004}, 70, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, v := range b {
		sum += v
	}
	if sum != 70 {
		t.Fatalf("sum = %d", sum)
	}
	if b[0] != 40 || b[1] != 20 || b[2] != 10 {
		t.Fatalf("allocation = %v, want [40 20 10]", b)
	}
}

func TestProportionalAllocationErrors(t *testing.T) {
	if _, err := ProportionalAllocation(nil, 10, nil); err == nil {
		t.Fatal("empty nodes accepted")
	}
	if _, err := ProportionalAllocation([]float64{0.001, 0}, 10, nil); err == nil {
		t.Fatal("zero per-sample time accepted")
	}
	if _, err := ProportionalAllocation([]float64{0.001, 0.002}, 1, nil); err == nil {
		t.Fatal("B < n accepted")
	}
}

func TestProportionalAllocationRespectsCaps(t *testing.T) {
	b, err := ProportionalAllocation([]float64{0.001, 0.002}, 30, []int{15, 20})
	if err != nil {
		t.Fatal(err)
	}
	if b[0] > 15 || b[1] > 20 || b[0]+b[1] != 30 {
		t.Fatalf("allocation = %v", b)
	}
}

func TestThroughput(t *testing.T) {
	p := Plan{TotalBatch: 100, Time: 0.5}
	if p.Throughput() != 200 {
		t.Fatalf("Throughput = %v", p.Throughput())
	}
	if (Plan{}).Throughput() != 0 {
		t.Fatal("zero plan throughput should be 0")
	}
}
