package optperf

import (
	"fmt"

	"cannikin/internal/linalg"
)

// SolveEqualGaussian solves the equalization system of Algorithm 1 the way
// the paper describes its complexity — as an (n+1)-variable linear system
//
//	d_i·b_i + c_i = μ   for every node i
//	Σ b_i           = B
//
// via Gaussian elimination with partial pivoting, O((n+1)³). The production
// solver uses the O(n) closed form (the system is diagonal plus one dense
// row); this path exists to validate it and to document the paper's
// formulation faithfully. It returns the per-node batches and the
// equalized value μ.
func SolveEqualGaussian(ds, cs []float64, total float64) (batches []float64, mu float64, err error) {
	n := len(ds)
	if n == 0 || len(cs) != n {
		return nil, 0, fmt.Errorf("optperf: gaussian system needs matching coefficients, got %d/%d", len(ds), len(cs))
	}
	// Unknowns: b_0..b_{n-1}, mu.
	a := linalg.NewMatrix(n+1, n+1)
	rhs := make([]float64, n+1)
	for i := 0; i < n; i++ {
		a.Set(i, i, ds[i])
		a.Set(i, n, -1)
		rhs[i] = -cs[i]
	}
	for i := 0; i < n; i++ {
		a.Set(n, i, 1)
	}
	rhs[n] = total
	x, err := linalg.Solve(a, rhs)
	if err != nil {
		return nil, 0, fmt.Errorf("optperf: gaussian equalization: %w", err)
	}
	return x[:n], x[n], nil
}

// solveEqualClosedForm is the O(n) production path, factored out so the
// cross-validation test exercises exactly what algorithm1 uses.
func solveEqualClosedForm(ds, cs []float64, total float64) (batches []float64, mu float64) {
	var sumInvD, sumCD float64
	for i := range ds {
		sumInvD += 1 / ds[i]
		sumCD += cs[i] / ds[i]
	}
	mu = (total + sumCD) / sumInvD
	batches = make([]float64, len(ds))
	for i := range ds {
		batches[i] = (mu - cs[i]) / ds[i]
	}
	return batches, mu
}
