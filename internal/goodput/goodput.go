// Package goodput implements the goodput objective of adaptive batch-size
// training (Pollux): the product of system throughput and statistical
// efficiency. The statistical efficiency of a total batch size B relative
// to the workload's base batch B0 follows the gradient-noise-scale model of
// McCandlish et al.:
//
//	eff(B) = (φ + B0) / (φ + B)
//
// so eff(B0) = 1 and larger batches pay an efficiency penalty that vanishes
// when the gradient noise φ dominates. Cannikin, like AdaptDL, enumerates
// total-batch-size candidates and picks the goodput maximizer; what differs
// is the throughput model (OptPerf vs even split).
package goodput

import (
	"errors"
	"fmt"
	"math"
)

// Efficiency returns the per-example statistical efficiency of batch size
// batch relative to baseBatch under gradient noise scale noise.
func Efficiency(noise float64, batch, baseBatch int) float64 {
	if batch <= 0 || baseBatch <= 0 {
		return 0
	}
	if noise < 0 {
		noise = 0
	}
	return (noise + float64(baseBatch)) / (noise + float64(batch))
}

// Goodput returns throughput x efficiency for a candidate: batch samples
// processed in batchTime seconds, discounted to effective samples/second.
func Goodput(noise float64, batch, baseBatch int, batchTime float64) float64 {
	if batchTime <= 0 {
		return 0
	}
	return float64(batch) / batchTime * Efficiency(noise, batch, baseBatch)
}

// Candidate pairs a total batch size with its predicted batch time under
// some allocation policy.
type Candidate struct {
	Batch int
	// Time is the predicted batch processing time at this batch size.
	Time float64
}

// Selection is the goodput-maximizing candidate.
type Selection struct {
	Candidate
	Goodput    float64
	Efficiency float64
}

// Select returns the candidate with the highest goodput for the given
// noise estimate. It returns an error when no candidate is usable.
func Select(cands []Candidate, noise float64, baseBatch int) (Selection, error) {
	if len(cands) == 0 {
		return Selection{}, errors.New("goodput: no candidates")
	}
	if baseBatch <= 0 {
		return Selection{}, fmt.Errorf("goodput: base batch %d", baseBatch)
	}
	best := Selection{Goodput: -1}
	for _, c := range cands {
		g := Goodput(noise, c.Batch, baseBatch, c.Time)
		if g > best.Goodput {
			best = Selection{
				Candidate:  c,
				Goodput:    g,
				Efficiency: Efficiency(noise, c.Batch, baseBatch),
			}
		}
	}
	if best.Goodput <= 0 {
		return Selection{}, errors.New("goodput: all candidates have non-positive goodput")
	}
	return best, nil
}

// CandidateRange enumerates count total-batch-size candidates spaced
// geometrically in [min, max], always including both endpoints, deduplicated
// and sorted. It mirrors the candidate enumeration of the adaptive batch
// size engine.
func CandidateRange(minBatch, maxBatch, count int) ([]int, error) {
	if minBatch <= 0 || maxBatch < minBatch {
		return nil, fmt.Errorf("goodput: invalid range [%d, %d]", minBatch, maxBatch)
	}
	if count < 2 {
		count = 2
	}
	if minBatch == maxBatch {
		return []int{minBatch}, nil
	}
	ratio := math.Pow(float64(maxBatch)/float64(minBatch), 1/float64(count-1))
	out := make([]int, 0, count)
	prev := 0
	for i := 0; i < count; i++ {
		v := int(math.Round(float64(minBatch) * math.Pow(ratio, float64(i))))
		if v <= prev {
			v = prev + 1
		}
		if v > maxBatch {
			v = maxBatch
		}
		if v != prev {
			out = append(out, v)
		}
		prev = v
	}
	if out[len(out)-1] != maxBatch {
		out = append(out, maxBatch)
	}
	return out, nil
}
