package goodput

import "testing"

func TestGoodputBoundaries(t *testing.T) {
	if got := Goodput(10, 100, 64, -0.5); got != 0 {
		t.Fatalf("negative time: Goodput = %v, want 0", got)
	}
	if got := Goodput(10, 0, 64, 1); got != 0 {
		t.Fatalf("zero batch: Goodput = %v, want 0", got)
	}
	if got := Goodput(10, 100, 0, 1); got != 0 {
		t.Fatalf("zero base batch: Goodput = %v, want 0", got)
	}
	// Negative noise clamps to 0, matching Efficiency.
	if Goodput(-3, 128, 64, 0.5) != Goodput(0, 128, 64, 0.5) {
		t.Fatal("negative noise should behave as zero noise")
	}
}

func TestCandidateRangeCountClamp(t *testing.T) {
	// count < 2 is clamped to 2: both endpoints, nothing else.
	for _, count := range []int{1, 0, -7} {
		cands, err := CandidateRange(64, 128, count)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != 2 || cands[0] != 64 || cands[1] != 128 {
			t.Fatalf("count=%d: got %v, want [64 128]", count, cands)
		}
	}
}

func TestCandidateRangeDenseDedup(t *testing.T) {
	// Far more candidates requested than integers in the range: rounding
	// collides constantly, so dedup plus the max cap must still yield a
	// strictly increasing list bounded by the endpoints.
	cands, err := CandidateRange(1, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if cands[0] != 1 || cands[len(cands)-1] != 4 {
		t.Fatalf("endpoints wrong: %v", cands)
	}
	if len(cands) > 4 {
		t.Fatalf("more candidates than integers in [1, 4]: %v", cands)
	}
	for i := 1; i < len(cands); i++ {
		if cands[i] <= cands[i-1] {
			t.Fatalf("not strictly increasing: %v", cands)
		}
	}
}

func TestSelectKeepsFirstOnTie(t *testing.T) {
	// Identical goodput: the earlier (smaller-batch) candidate is retained,
	// so ties resolve toward the more efficient option.
	cands := []Candidate{
		{Batch: 64, Time: 0.1},
		{Batch: 64, Time: 0.1},
	}
	sel, err := Select(cands, 1e9, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Batch != 64 || sel.Time != 0.1 {
		t.Fatalf("tie selection: %+v", sel)
	}
	// A strictly better late candidate still wins.
	cands = append(cands, Candidate{Batch: 64, Time: 0.05})
	sel, err = Select(cands, 1e9, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Time != 0.05 {
		t.Fatalf("better candidate not selected: %+v", sel)
	}
}
