package goodput

import (
	"math"
	"testing"
)

func TestEfficiencyBounds(t *testing.T) {
	if got := Efficiency(1000, 64, 64); got != 1 {
		t.Fatalf("eff(B0) = %v, want 1", got)
	}
	if got := Efficiency(1000, 128, 64); got >= 1 || got <= 0 {
		t.Fatalf("eff(2*B0) = %v, want in (0,1)", got)
	}
	// Noise-dominated: doubling the batch barely hurts.
	if got := Efficiency(1e9, 128, 64); got < 0.999 {
		t.Fatalf("high-noise efficiency = %v", got)
	}
	// Clean gradients: doubling the batch halves efficiency.
	if got := Efficiency(0, 128, 64); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("zero-noise efficiency = %v, want 0.5", got)
	}
	if Efficiency(10, 0, 64) != 0 || Efficiency(10, 64, 0) != 0 {
		t.Fatal("degenerate batches should give 0")
	}
	if Efficiency(-5, 64, 64) != 1 {
		t.Fatal("negative noise should clamp to 0")
	}
}

func TestEfficiencyMonotoneInBatch(t *testing.T) {
	prev := 2.0
	for _, b := range []int{64, 128, 256, 512, 1024} {
		e := Efficiency(500, b, 64)
		if e >= prev {
			t.Fatalf("efficiency not decreasing at %d: %v >= %v", b, e, prev)
		}
		prev = e
	}
}

func TestGoodput(t *testing.T) {
	// batch 100 in 0.5s at eff 1 => 200 effective samples/s.
	if got := Goodput(1e12, 100, 100, 0.5); math.Abs(got-200) > 1e-6 {
		t.Fatalf("Goodput = %v", got)
	}
	if Goodput(10, 100, 100, 0) != 0 {
		t.Fatal("zero time should give zero goodput")
	}
}

func TestSelectBalancesThroughputAndEfficiency(t *testing.T) {
	// Throughput grows sublinearly; with moderate noise the best batch is
	// in the middle of the range.
	cands := []Candidate{
		{Batch: 64, Time: 0.10},   // 640/s
		{Batch: 256, Time: 0.20},  // 1280/s
		{Batch: 1024, Time: 0.60}, // 1707/s
	}
	sel, err := Select(cands, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Batch != 256 {
		t.Fatalf("selected %d, want 256 (moderate noise)", sel.Batch)
	}
	// Very high noise: the largest batch wins on raw throughput.
	sel, err = Select(cands, 1e9, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Batch != 1024 {
		t.Fatalf("selected %d, want 1024 (high noise)", sel.Batch)
	}
	// Near-zero noise: the base batch wins on efficiency.
	sel, err = Select(cands, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Batch != 64 {
		t.Fatalf("selected %d, want 64 (low noise)", sel.Batch)
	}
}

func TestSelectErrors(t *testing.T) {
	if _, err := Select(nil, 10, 64); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, err := Select([]Candidate{{Batch: 64, Time: 1}}, 10, 0); err == nil {
		t.Fatal("zero base batch accepted")
	}
	if _, err := Select([]Candidate{{Batch: 64, Time: 0}}, 10, 64); err == nil {
		t.Fatal("all-zero goodput accepted")
	}
}

func TestSelectReportsEfficiency(t *testing.T) {
	sel, err := Select([]Candidate{{Batch: 128, Time: 0.1}}, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := Efficiency(128, 128, 64)
	if sel.Efficiency != want {
		t.Fatalf("Efficiency = %v, want %v", sel.Efficiency, want)
	}
	if math.Abs(sel.Goodput-float64(128)/0.1*want) > 1e-9 {
		t.Fatalf("Goodput = %v", sel.Goodput)
	}
}

func TestCandidateRange(t *testing.T) {
	cands, err := CandidateRange(64, 4096, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cands[0] != 64 || cands[len(cands)-1] != 4096 {
		t.Fatalf("endpoints wrong: %v", cands)
	}
	for i := 1; i < len(cands); i++ {
		if cands[i] <= cands[i-1] {
			t.Fatalf("not strictly increasing: %v", cands)
		}
	}
	// Geometric spacing: ratios roughly constant.
	r1 := float64(cands[1]) / float64(cands[0])
	rLast := float64(cands[len(cands)-1]) / float64(cands[len(cands)-2])
	if r1 < 1.1 || rLast < 1.1 {
		t.Fatalf("spacing degenerate: %v", cands)
	}
}

func TestCandidateRangeEdgeCases(t *testing.T) {
	if _, err := CandidateRange(0, 10, 5); err == nil {
		t.Fatal("min 0 accepted")
	}
	if _, err := CandidateRange(10, 5, 5); err == nil {
		t.Fatal("max < min accepted")
	}
	single, err := CandidateRange(32, 32, 5)
	if err != nil || len(single) != 1 || single[0] != 32 {
		t.Fatalf("degenerate range: %v %v", single, err)
	}
	tight, err := CandidateRange(10, 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tight); i++ {
		if tight[i] <= tight[i-1] {
			t.Fatalf("tight range not increasing: %v", tight)
		}
	}
	if tight[len(tight)-1] != 12 {
		t.Fatalf("tight range misses max: %v", tight)
	}
}
