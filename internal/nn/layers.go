// Package nn is a compact, dependency-free neural-network training engine:
// dense layers with manual backpropagation, classification/regression
// losses, SGD/Adam/AdamW optimizers, and the learning-rate scaling rules
// (AdaScale, square-root) used by the paper's workloads (Table 5).
//
// The engine produces real gradients so the reproduction can validate the
// heterogeneous GNS estimators and the batch-weighted all-reduce on actual
// training runs, not only on synthetic norms.
//
// Every layer owns a reusable workspace (activations, masks, gradient
// scratch) sized on first use, and the hot path runs through the
// destination-passing kernels in internal/tensor, so a steady-state
// training step allocates nothing. Workspace tensors returned by
// Forward/Backward are valid until the layer's next Forward/Backward call;
// callers needing longer-lived values must copy. The arithmetic — down to
// summation order and the kernels' exact-zero skip — is unchanged from the
// original allocating implementation, so training trajectories are bitwise
// identical.
package nn

import (
	"fmt"
	"math"

	"cannikin/internal/rng"
	"cannikin/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.T
	Grad *tensor.T
}

// Size returns the number of scalar weights.
func (p *Param) Size() int { return p.W.Rows() * p.W.Cols() }

// Layer is a differentiable network stage. Backward must be called after
// Forward with the same batch and accumulates into parameter gradients.
type Layer interface {
	Forward(x *tensor.T) *tensor.T
	Backward(dout *tensor.T) *tensor.T
	Params() []*Param
}

// Linear is a fully connected layer: y = x W + b.
type Linear struct {
	w, b *Param
	x    *tensor.T // cached input

	// Reusable workspace, sized on first use: the forward output, the
	// backward input-gradient, the xᵀ·dout product, and the bias-gradient
	// column sums. The dw/db scratch keeps Backward's accumulate-into-Grad
	// arithmetic identical to the original product-then-Add formulation.
	out, dx, dw *tensor.T
	db          []float64
}

// NewLinear returns a Linear layer with Xavier/Glorot-initialized weights.
func NewLinear(in, out int, src *rng.Source) *Linear {
	std := math.Sqrt(2.0 / float64(in+out))
	return &Linear{
		w: &Param{
			Name: fmt.Sprintf("linear_%dx%d/w", in, out),
			W:    tensor.Randn(in, out, std, src),
			Grad: tensor.New(in, out),
		},
		b: &Param{
			Name: fmt.Sprintf("linear_%dx%d/b", in, out),
			W:    tensor.New(1, out),
			Grad: tensor.New(1, out),
		},
	}
}

// Forward computes x W + b into the layer workspace, caching x for the
// backward pass.
func (l *Linear) Forward(x *tensor.T) *tensor.T {
	l.x = x
	l.out = tensor.Reuse(l.out, x.Rows(), l.w.W.Cols())
	tensor.MatMulInto(l.out, x, l.w.W)
	return l.out.AddRowVector(l.b.W.Row(0))
}

// Backward accumulates dW = xᵀ dout, db = Σ dout and returns dx = dout Wᵀ.
// The transposed products run through the fused kernels — no Transpose
// copies — with the products formed in scratch and then added, so repeated
// Backward calls accumulate exactly like the original implementation.
func (l *Linear) Backward(dout *tensor.T) *tensor.T {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	in, out := l.w.W.Rows(), l.w.W.Cols()
	l.dw = tensor.Reuse(l.dw, in, out)
	l.dw.Zero()
	tensor.AddMulATInto(l.dw, l.x, dout)
	l.w.Grad.Add(l.dw)

	if cap(l.db) < out {
		l.db = make([]float64, out)
	}
	bg := l.db[:out]
	for j := range bg {
		bg[j] = 0
	}
	for i := 0; i < dout.Rows(); i++ {
		row := dout.Row(i)
		for j, v := range row {
			bg[j] += v
		}
	}
	row := l.b.Grad.Row(0)
	for j := range row {
		row[j] += bg[j]
	}

	l.dx = tensor.Reuse(l.dx, dout.Rows(), in)
	tensor.MulBTInto(l.dx, dout, l.w.W)
	return l.dx
}

// Params returns the layer's weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.w, l.b} }

// ReLU is the rectified linear activation.
type ReLU struct {
	mask, out, dx *tensor.T
}

// Forward returns max(x, 0), computing the output and the backward mask in
// one pass over the input.
func (r *ReLU) Forward(x *tensor.T) *tensor.T {
	r.mask = tensor.Reuse(r.mask, x.Rows(), x.Cols())
	r.out = tensor.Reuse(r.out, x.Rows(), x.Cols())
	md, od := r.mask.Data(), r.out.Data()
	for i, v := range x.Data() {
		if v > 0 {
			md[i] = 1
			od[i] = v
		} else {
			md[i] = 0
			od[i] = 0
		}
	}
	return r.out
}

// Backward masks the upstream gradient.
func (r *ReLU) Backward(dout *tensor.T) *tensor.T {
	if r.mask == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	if dout.Rows() != r.mask.Rows() || dout.Cols() != r.mask.Cols() {
		panic(fmt.Sprintf("nn: ReLU.Backward shape %dx%d, mask %dx%d",
			dout.Rows(), dout.Cols(), r.mask.Rows(), r.mask.Cols()))
	}
	r.dx = tensor.Reuse(r.dx, dout.Rows(), dout.Cols())
	dd, md := r.dx.Data(), r.mask.Data()
	for i, v := range dout.Data() {
		dd[i] = v * md[i]
	}
	return r.dx
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	out, dx *tensor.T
}

// Forward returns tanh(x).
func (t *Tanh) Forward(x *tensor.T) *tensor.T {
	t.out = tensor.Reuse(t.out, x.Rows(), x.Cols())
	od := t.out.Data()
	for i, v := range x.Data() {
		od[i] = math.Tanh(v)
	}
	return t.out
}

// Backward computes dout * (1 - tanh²).
func (t *Tanh) Backward(dout *tensor.T) *tensor.T {
	if t.out == nil {
		panic("nn: Tanh.Backward before Forward")
	}
	if dout.Rows() != t.out.Rows() || dout.Cols() != t.out.Cols() {
		panic(fmt.Sprintf("nn: Tanh.Backward shape %dx%d, out %dx%d",
			dout.Rows(), dout.Cols(), t.out.Rows(), t.out.Cols()))
	}
	t.dx = tensor.Reuse(t.dx, dout.Rows(), dout.Cols())
	dd, od := t.dx.Data(), t.out.Data()
	for i, v := range dout.Data() {
		y := od[i]
		dd[i] = v * (1 - y*y)
	}
	return t.dx
}

// Params returns nil: Tanh has no parameters.
func (t *Tanh) Params() []*Param { return nil }

// Network is a sequential stack of layers. The layer set is fixed at
// construction, so the flattened parameter list and the per-layer offsets
// are computed once and cached.
type Network struct {
	layers []Layer

	params  []*Param
	offsets []int
	built   bool
}

// NewMLP builds Linear+ReLU stacks with a final Linear, e.g. sizes
// [in, hidden..., out].
func NewMLP(sizes []int, src *rng.Source) *Network {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	var layers []Layer
	for i := 0; i < len(sizes)-1; i++ {
		layers = append(layers, NewLinear(sizes[i], sizes[i+1], src))
		if i < len(sizes)-2 {
			layers = append(layers, &ReLU{})
		}
	}
	return &Network{layers: layers}
}

// NewSequential wraps explicit layers.
func NewSequential(layers ...Layer) *Network { return &Network{layers: layers} }

// build computes the cached parameter list and layer offsets.
func (n *Network) build() {
	if n.built {
		return
	}
	for _, l := range n.layers {
		n.params = append(n.params, l.Params()...)
	}
	n.offsets = make([]int, len(n.layers)+1)
	for i, l := range n.layers {
		size := 0
		for _, p := range l.Params() {
			size += p.Size()
		}
		n.offsets[i+1] = n.offsets[i] + size
	}
	n.built = true
}

// Forward runs the full stack.
func (n *Network) Forward(x *tensor.T) *tensor.T {
	for _, l := range n.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the loss gradient through the stack, accumulating
// parameter gradients.
func (n *Network) Backward(dout *tensor.T) {
	n.BackwardLayerwise(dout, nil)
}

// BackwardLayerwise propagates like Backward but additionally reports
// gradient readiness: after each layer's backward pass, onReady is called
// with the flat-vector frontier — every gradient element at offset ≥
// frontier is final and will not be touched again this pass. Because
// backprop visits layers last-to-first, the frontier walks down from
// NumParams() to 0, which is exactly what a bucketed all-reduce needs to
// launch high-offset buckets while earlier layers are still computing.
// onReady may be nil.
func (n *Network) BackwardLayerwise(dout *tensor.T, onReady func(frontier int)) {
	var offsets []int
	if onReady != nil {
		n.build()
		offsets = n.offsets
	}
	for i := len(n.layers) - 1; i >= 0; i-- {
		dout = n.layers[i].Backward(dout)
		if onReady != nil {
			onReady(offsets[i])
		}
	}
}

// ParamOffsets returns the flat-vector offsets of each layer's parameter
// block: offsets[i] is where layer i's parameters begin in the
// FlatGrads/FlatWeights layout and offsets[len(layers)] is NumParams().
// Parameterless layers contribute empty blocks (offsets[i+1] == offsets[i]).
// The returned slice is shared and must not be modified.
func (n *Network) ParamOffsets() []int {
	n.build()
	return n.offsets
}

// Params returns all trainable parameters in layer order. The returned
// slice is shared and must not be modified.
func (n *Network) Params() []*Param {
	n.build()
	return n.params
}

// NumParams returns the total scalar parameter count.
func (n *Network) NumParams() int {
	n.build()
	return n.offsets[len(n.offsets)-1]
}

// ZeroGrad clears all parameter gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// FlatGrads copies all gradients into one contiguous vector (layer order).
func (n *Network) FlatGrads() []float64 {
	return n.FlatGradsInto(make([]float64, n.NumParams()))
}

// FlatGradsInto copies all gradients into dst (layer order) and returns it.
// dst must have NumParams() length.
func (n *Network) FlatGradsInto(dst []float64) []float64 {
	if len(dst) != n.NumParams() {
		panic(fmt.Sprintf("nn: FlatGradsInto length %d != %d", len(dst), n.NumParams()))
	}
	off := 0
	for _, p := range n.Params() {
		off += copy(dst[off:], p.Grad.Data())
	}
	return dst
}

// SetFlatGrads overwrites all gradients from one contiguous vector.
func (n *Network) SetFlatGrads(v []float64) {
	if len(v) != n.NumParams() {
		panic(fmt.Sprintf("nn: SetFlatGrads length %d != %d", len(v), n.NumParams()))
	}
	off := 0
	for _, p := range n.Params() {
		copy(p.Grad.Data(), v[off:off+p.Size()])
		off += p.Size()
	}
}

// FlatWeights copies all weights into one contiguous vector.
func (n *Network) FlatWeights() []float64 {
	return n.FlatWeightsInto(make([]float64, n.NumParams()))
}

// FlatWeightsInto copies all weights into dst (layer order) and returns it.
// dst must have NumParams() length.
func (n *Network) FlatWeightsInto(dst []float64) []float64 {
	if len(dst) != n.NumParams() {
		panic(fmt.Sprintf("nn: FlatWeightsInto length %d != %d", len(dst), n.NumParams()))
	}
	off := 0
	for _, p := range n.Params() {
		off += copy(dst[off:], p.W.Data())
	}
	return dst
}

// SetFlatWeights overwrites all weights from one contiguous vector (used to
// keep data-parallel replicas in sync).
func (n *Network) SetFlatWeights(v []float64) {
	if len(v) != n.NumParams() {
		panic(fmt.Sprintf("nn: SetFlatWeights length %d != %d", len(v), n.NumParams()))
	}
	off := 0
	for _, p := range n.Params() {
		copy(p.W.Data(), v[off:off+p.Size()])
		off += p.Size()
	}
}
