// Package nn is a compact, dependency-free neural-network training engine:
// dense layers with manual backpropagation, classification/regression
// losses, SGD/Adam/AdamW optimizers, and the learning-rate scaling rules
// (AdaScale, square-root) used by the paper's workloads (Table 5).
//
// The engine produces real gradients so the reproduction can validate the
// heterogeneous GNS estimators and the batch-weighted all-reduce on actual
// training runs, not only on synthetic norms.
package nn

import (
	"fmt"
	"math"

	"cannikin/internal/rng"
	"cannikin/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.T
	Grad *tensor.T
}

// Size returns the number of scalar weights.
func (p *Param) Size() int { return p.W.Rows() * p.W.Cols() }

// Layer is a differentiable network stage. Backward must be called after
// Forward with the same batch and accumulates into parameter gradients.
type Layer interface {
	Forward(x *tensor.T) *tensor.T
	Backward(dout *tensor.T) *tensor.T
	Params() []*Param
}

// Linear is a fully connected layer: y = x W + b.
type Linear struct {
	w, b *Param
	x    *tensor.T // cached input
}

// NewLinear returns a Linear layer with Xavier/Glorot-initialized weights.
func NewLinear(in, out int, src *rng.Source) *Linear {
	std := math.Sqrt(2.0 / float64(in+out))
	return &Linear{
		w: &Param{
			Name: fmt.Sprintf("linear_%dx%d/w", in, out),
			W:    tensor.Randn(in, out, std, src),
			Grad: tensor.New(in, out),
		},
		b: &Param{
			Name: fmt.Sprintf("linear_%dx%d/b", in, out),
			W:    tensor.New(1, out),
			Grad: tensor.New(1, out),
		},
	}
}

// Forward computes x W + b, caching x for the backward pass.
func (l *Linear) Forward(x *tensor.T) *tensor.T {
	l.x = x
	return x.MatMul(l.w.W).AddRowVector(l.b.W.Row(0))
}

// Backward accumulates dW = xᵀ dout, db = Σ dout and returns dx = dout Wᵀ.
func (l *Linear) Backward(dout *tensor.T) *tensor.T {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	l.w.Grad.Add(l.x.Transpose().MatMul(dout))
	bg := dout.SumColumns()
	row := l.b.Grad.Row(0)
	for j := range row {
		row[j] += bg[j]
	}
	return dout.MatMul(l.w.W.Transpose())
}

// Params returns the layer's weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.w, l.b} }

// ReLU is the rectified linear activation.
type ReLU struct {
	mask *tensor.T
}

// Forward returns max(x, 0).
func (r *ReLU) Forward(x *tensor.T) *tensor.T {
	r.mask = tensor.New(x.Rows(), x.Cols())
	out := x.Clone()
	for i, v := range x.Data() {
		if v > 0 {
			r.mask.Data()[i] = 1
		} else {
			out.Data()[i] = 0
		}
	}
	return out
}

// Backward masks the upstream gradient.
func (r *ReLU) Backward(dout *tensor.T) *tensor.T {
	if r.mask == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	return dout.Clone().Hadamard(r.mask)
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	out *tensor.T
}

// Forward returns tanh(x).
func (t *Tanh) Forward(x *tensor.T) *tensor.T {
	t.out = x.Clone().Apply(math.Tanh)
	return t.out
}

// Backward computes dout * (1 - tanh²).
func (t *Tanh) Backward(dout *tensor.T) *tensor.T {
	if t.out == nil {
		panic("nn: Tanh.Backward before Forward")
	}
	dx := dout.Clone()
	for i, y := range t.out.Data() {
		dx.Data()[i] *= 1 - y*y
	}
	return dx
}

// Params returns nil: Tanh has no parameters.
func (t *Tanh) Params() []*Param { return nil }

// Network is a sequential stack of layers.
type Network struct {
	layers []Layer
}

// NewMLP builds Linear+ReLU stacks with a final Linear, e.g. sizes
// [in, hidden..., out].
func NewMLP(sizes []int, src *rng.Source) *Network {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	var layers []Layer
	for i := 0; i < len(sizes)-1; i++ {
		layers = append(layers, NewLinear(sizes[i], sizes[i+1], src))
		if i < len(sizes)-2 {
			layers = append(layers, &ReLU{})
		}
	}
	return &Network{layers: layers}
}

// NewSequential wraps explicit layers.
func NewSequential(layers ...Layer) *Network { return &Network{layers: layers} }

// Forward runs the full stack.
func (n *Network) Forward(x *tensor.T) *tensor.T {
	for _, l := range n.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the loss gradient through the stack, accumulating
// parameter gradients.
func (n *Network) Backward(dout *tensor.T) {
	n.BackwardLayerwise(dout, nil)
}

// BackwardLayerwise propagates like Backward but additionally reports
// gradient readiness: after each layer's backward pass, onReady is called
// with the flat-vector frontier — every gradient element at offset ≥
// frontier is final and will not be touched again this pass. Because
// backprop visits layers last-to-first, the frontier walks down from
// NumParams() to 0, which is exactly what a bucketed all-reduce needs to
// launch high-offset buckets while earlier layers are still computing.
// onReady may be nil.
func (n *Network) BackwardLayerwise(dout *tensor.T, onReady func(frontier int)) {
	var offsets []int
	if onReady != nil {
		offsets = n.ParamOffsets()
	}
	for i := len(n.layers) - 1; i >= 0; i-- {
		dout = n.layers[i].Backward(dout)
		if onReady != nil {
			onReady(offsets[i])
		}
	}
}

// ParamOffsets returns the flat-vector offsets of each layer's parameter
// block: offsets[i] is where layer i's parameters begin in the
// FlatGrads/FlatWeights layout and offsets[len(layers)] is NumParams().
// Parameterless layers contribute empty blocks (offsets[i+1] == offsets[i]).
func (n *Network) ParamOffsets() []int {
	offsets := make([]int, len(n.layers)+1)
	for i, l := range n.layers {
		size := 0
		for _, p := range l.Params() {
			size += p.Size()
		}
		offsets[i+1] = offsets[i] + size
	}
	return offsets
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the total scalar parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Size()
	}
	return total
}

// ZeroGrad clears all parameter gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// FlatGrads copies all gradients into one contiguous vector (layer order).
func (n *Network) FlatGrads() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, p := range n.Params() {
		out = append(out, p.Grad.Data()...)
	}
	return out
}

// SetFlatGrads overwrites all gradients from one contiguous vector.
func (n *Network) SetFlatGrads(v []float64) {
	if len(v) != n.NumParams() {
		panic(fmt.Sprintf("nn: SetFlatGrads length %d != %d", len(v), n.NumParams()))
	}
	off := 0
	for _, p := range n.Params() {
		copy(p.Grad.Data(), v[off:off+p.Size()])
		off += p.Size()
	}
}

// FlatWeights copies all weights into one contiguous vector.
func (n *Network) FlatWeights() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, p := range n.Params() {
		out = append(out, p.W.Data()...)
	}
	return out
}

// SetFlatWeights overwrites all weights from one contiguous vector (used to
// keep data-parallel replicas in sync).
func (n *Network) SetFlatWeights(v []float64) {
	if len(v) != n.NumParams() {
		panic(fmt.Sprintf("nn: SetFlatWeights length %d != %d", len(v), n.NumParams()))
	}
	off := 0
	for _, p := range n.Params() {
		copy(p.W.Data(), v[off:off+p.Size()])
		off += p.Size()
	}
}
