package nn

import (
	"math"
	"testing"

	"cannikin/internal/rng"
	"cannikin/internal/tensor"
)

func TestLinearForwardShape(t *testing.T) {
	src := rng.New(1)
	l := NewLinear(4, 3, src)
	x := tensor.Randn(5, 4, 1, src)
	y := l.Forward(x)
	if y.Rows() != 5 || y.Cols() != 3 {
		t.Fatalf("output shape %dx%d", y.Rows(), y.Cols())
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	for name, l := range map[string]Layer{
		"linear": NewLinear(2, 2, rng.New(1)),
		"relu":   &ReLU{},
		"tanh":   &Tanh{},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Backward before Forward did not panic", name)
				}
			}()
			l.Backward(tensor.New(1, 2))
		}()
	}
}

// TestGradientCheck verifies the entire backpropagation against central
// finite differences — the canonical correctness test for an NN engine.
func TestGradientCheck(t *testing.T) {
	src := rng.New(42)
	net := NewMLP([]int{5, 7, 4, 3}, src)
	x := tensor.Randn(6, 5, 1, src)
	labels := []int{0, 2, 1, 2, 0, 1}

	net.ZeroGrad()
	logits := net.Forward(x)
	_, dlogits := SoftmaxCrossEntropy(logits, labels)
	net.Backward(dlogits)
	analytic := net.FlatGrads()

	weights := net.FlatWeights()
	const eps = 1e-6
	lossAt := func(w []float64) float64 {
		net.SetFlatWeights(w)
		out := net.Forward(x)
		loss, _ := SoftmaxCrossEntropy(out, labels)
		return loss
	}
	// Spot-check a spread of coordinates (full check is O(P) forward passes).
	for _, idx := range []int{0, 1, 7, 19, 23, 41, len(weights) / 2, len(weights) - 2, len(weights) - 1} {
		wPlus := append([]float64(nil), weights...)
		wMinus := append([]float64(nil), weights...)
		wPlus[idx] += eps
		wMinus[idx] -= eps
		numeric := (lossAt(wPlus) - lossAt(wMinus)) / (2 * eps)
		if diff := math.Abs(numeric - analytic[idx]); diff > 1e-5*(1+math.Abs(numeric)) {
			t.Errorf("coordinate %d: numeric %v vs analytic %v", idx, numeric, analytic[idx])
		}
	}
	net.SetFlatWeights(weights)
}

func TestGradientCheckTanhMSE(t *testing.T) {
	src := rng.New(9)
	net := NewSequential(NewLinear(3, 4, src), &Tanh{}, NewLinear(4, 2, src))
	x := tensor.Randn(5, 3, 1, src)
	target := tensor.Randn(5, 2, 1, src)

	net.ZeroGrad()
	pred := net.Forward(x)
	_, dpred := MSE(pred, target)
	net.Backward(dpred)
	analytic := net.FlatGrads()

	weights := net.FlatWeights()
	const eps = 1e-6
	lossAt := func(w []float64) float64 {
		net.SetFlatWeights(w)
		loss, _ := MSE(net.Forward(x), target)
		return loss
	}
	for idx := 0; idx < len(weights); idx += 5 {
		wp := append([]float64(nil), weights...)
		wm := append([]float64(nil), weights...)
		wp[idx] += eps
		wm[idx] -= eps
		numeric := (lossAt(wp) - lossAt(wm)) / (2 * eps)
		if math.Abs(numeric-analytic[idx]) > 1e-5*(1+math.Abs(numeric)) {
			t.Errorf("coordinate %d: numeric %v vs analytic %v", idx, numeric, analytic[idx])
		}
	}
}

func TestSoftmaxCrossEntropyKnownValues(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{1, 3})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss = %v, want ln4", loss)
	}
	// Gradient rows sum to 0 (softmax minus one-hot, averaged).
	for i := 0; i < 2; i++ {
		sum := 0.0
		for _, v := range grad.Row(i) {
			sum += v
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("grad row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxCrossEntropyPanics(t *testing.T) {
	logits := tensor.New(1, 2)
	for name, f := range map[string]func(){
		"label count": func() { SoftmaxCrossEntropy(logits, []int{0, 1}) },
		"label range": func() { SoftmaxCrossEntropy(logits, []int{5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromRows([][]float64{
		{2, 1, 0},
		{0, 3, 1},
		{1, 0, 5},
		{9, 0, 0},
	})
	if got := Accuracy(logits, []int{0, 1, 2, 1}); got != 0.75 {
		t.Fatalf("Accuracy = %v", got)
	}
}

func TestMSE(t *testing.T) {
	pred := tensor.FromRows([][]float64{{1, 2}})
	target := tensor.FromRows([][]float64{{0, 0}})
	loss, grad := MSE(pred, target)
	if math.Abs(loss-2.5) > 1e-12 {
		t.Fatalf("loss = %v, want 2.5", loss)
	}
	if grad.At(0, 0) != 1 || grad.At(0, 1) != 2 {
		t.Fatalf("grad = %+v", grad)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize ||w||² by feeding grad = 2w directly.
	p := &Param{W: tensor.FromRows([][]float64{{3, -4}}), Grad: tensor.New(1, 2)}
	opt := NewSGD(0.9, 0)
	for i := 0; i < 200; i++ {
		p.Grad.Zero()
		p.Grad.Add(p.W.Clone().Scale(2))
		opt.Step([]*Param{p}, 0.05)
	}
	if p.W.SqNorm() > 1e-6 {
		t.Fatalf("SGD did not converge: %v", p.W.SqNorm())
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := &Param{W: tensor.FromRows([][]float64{{3, -4}}), Grad: tensor.New(1, 2)}
	opt := NewAdam()
	for i := 0; i < 2000; i++ {
		p.Grad.Zero()
		p.Grad.Add(p.W.Clone().Scale(2))
		opt.Step([]*Param{p}, 0.05)
	}
	if p.W.SqNorm() > 1e-4 {
		t.Fatalf("Adam did not converge: %v", p.W.SqNorm())
	}
}

func TestAdamWDecaysWeights(t *testing.T) {
	p := &Param{W: tensor.FromRows([][]float64{{1}}), Grad: tensor.New(1, 1)}
	opt := NewAdamW(0.1)
	// Zero gradient: only decoupled decay acts.
	opt.Step([]*Param{p}, 0.1)
	if p.W.At(0, 0) >= 1 {
		t.Fatal("AdamW did not decay weight with zero gradient")
	}
}

func TestTrainMLPOnBlobs(t *testing.T) {
	// End-to-end: a small MLP must separate three Gaussian blobs.
	src := rng.New(7)
	const (
		classes = 3
		dim     = 4
		perCls  = 60
	)
	centers := [][]float64{
		{2, 0, 0, 0},
		{0, 2, 0, 0},
		{0, 0, 2, 0},
	}
	n := classes * perCls
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for c := 0; c < classes; c++ {
		for s := 0; s < perCls; s++ {
			i := c*perCls + s
			labels[i] = c
			for j := 0; j < dim; j++ {
				x.Set(i, j, centers[c][j]+src.Norm(0, 0.5))
			}
		}
	}
	net := NewMLP([]int{dim, 16, classes}, src)
	opt := NewSGD(0.9, 1e-4)
	for epoch := 0; epoch < 60; epoch++ {
		net.ZeroGrad()
		logits := net.Forward(x)
		_, dlogits := SoftmaxCrossEntropy(logits, labels)
		net.Backward(dlogits)
		opt.Step(net.Params(), 0.05)
	}
	acc := Accuracy(net.Forward(x), labels)
	if acc < 0.95 {
		t.Fatalf("training accuracy %v < 0.95", acc)
	}
}

func TestFlatGradsRoundTrip(t *testing.T) {
	src := rng.New(3)
	net := NewMLP([]int{3, 5, 2}, src)
	if net.NumParams() != 3*5+5+5*2+2 {
		t.Fatalf("NumParams = %d", net.NumParams())
	}
	v := make([]float64, net.NumParams())
	for i := range v {
		v[i] = float64(i)
	}
	net.SetFlatGrads(v)
	got := net.FlatGrads()
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("round trip failed at %d", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong length accepted")
		}
	}()
	net.SetFlatGrads(v[:3])
}

func TestFlatWeightsRoundTrip(t *testing.T) {
	src := rng.New(4)
	a := NewMLP([]int{3, 4, 2}, src)
	b := NewMLP([]int{3, 4, 2}, src.Split("other"))
	b.SetFlatWeights(a.FlatWeights())
	x := tensor.Randn(2, 3, 1, src)
	ya, yb := a.Forward(x), b.Forward(x)
	for i := 0; i < ya.Rows(); i++ {
		for j := 0; j < ya.Cols(); j++ {
			if ya.At(i, j) != yb.At(i, j) {
				t.Fatal("weight sync failed: replicas diverge")
			}
		}
	}
}

func TestLRScalers(t *testing.T) {
	ada := AdaScale{}
	// At the base batch, no change.
	if got := ada.Scale(0.1, 64, 64, 1000); got != 0.1 {
		t.Fatalf("AdaScale base = %v", got)
	}
	// High noise: near-linear scaling.
	highNoise := ada.Scale(0.1, 640, 64, 1e9)
	if math.Abs(highNoise-1.0) > 0.01 {
		t.Fatalf("AdaScale high-noise = %v, want ~1.0 (10x)", highNoise)
	}
	// Low noise: little gain.
	lowNoise := ada.Scale(0.1, 640, 64, 1)
	if lowNoise > 0.12 {
		t.Fatalf("AdaScale low-noise = %v, want ~0.1", lowNoise)
	}
	sq := SquareRoot{}
	if got := sq.Scale(0.1, 256, 64, 0); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("SquareRoot = %v, want 0.2", got)
	}
	lin := LinearScale{}
	if got := lin.Scale(0.1, 128, 64, 0); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("LinearScale = %v, want 0.2", got)
	}
	// Degenerate inputs fall back to baseLR.
	if ada.Scale(0.1, 0, 64, 1) != 0.1 || sq.Scale(0.1, 64, 0, 0) != 0.1 || lin.Scale(0.1, -1, 64, 0) != 0.1 {
		t.Fatal("degenerate batch sizes should return baseLR")
	}
}

func TestNewMLPPanicsOnTooFewSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMLP([1]) accepted")
		}
	}()
	NewMLP([]int{1}, rng.New(1))
}

func TestGradAccumulation(t *testing.T) {
	// Two backward passes without ZeroGrad must accumulate.
	src := rng.New(11)
	net := NewMLP([]int{2, 2}, src)
	x := tensor.Randn(3, 2, 1, src)
	labels := []int{0, 1, 0}
	net.ZeroGrad()
	logits := net.Forward(x)
	_, d := SoftmaxCrossEntropy(logits, labels)
	net.Backward(d)
	once := net.FlatGrads()
	logits = net.Forward(x)
	_, d = SoftmaxCrossEntropy(logits, labels)
	net.Backward(d)
	twice := net.FlatGrads()
	for i := range once {
		if math.Abs(twice[i]-2*once[i]) > 1e-12 {
			t.Fatalf("gradient did not accumulate at %d: %v vs 2*%v", i, twice[i], once[i])
		}
	}
}
