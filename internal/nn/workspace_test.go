package nn

import (
	"fmt"
	"testing"

	"cannikin/internal/rng"
	"cannikin/internal/tensor"
)

// TestWorkspaceReuseBitwiseStable: running the same step twice on one
// network (reusing every workspace) must give exactly the bits a fresh
// identically-initialized network gives — workspace reuse may not leak
// state between steps.
func TestWorkspaceReuseBitwiseStable(t *testing.T) {
	build := func() *Network { return NewMLP([]int{6, 16, 8, 3}, rng.New(5)) }
	src := rng.New(9)
	x := tensor.Randn(12, 6, 1, src)
	labels := make([]int, 12)
	for i := range labels {
		labels[i] = i % 3
	}

	step := func(net *Network) ([]float64, float64) {
		net.ZeroGrad()
		logits := net.Forward(x)
		loss, dlogits := SoftmaxCrossEntropy(logits, labels)
		net.Backward(dlogits)
		return net.FlatGrads(), loss
	}

	reused := build()
	// Warm the workspaces with a different batch shape first, then with the
	// real one: reslicing must not change results.
	big := tensor.Randn(40, 6, 1, rng.New(2))
	reused.Forward(big)
	g1, l1 := step(reused)
	g2, l2 := step(reused)

	fresh := build()
	gf, lf := step(fresh)

	if l1 != lf || l2 != lf {
		t.Fatalf("losses %v/%v != fresh %v", l1, l2, lf)
	}
	for i := range gf {
		if g1[i] != gf[i] || g2[i] != gf[i] {
			t.Fatalf("grad %d: reused %v/%v != fresh %v", i, g1[i], g2[i], gf[i])
		}
	}
}

// TestGradAccumulationUnchanged: two Backward calls without ZeroGrad must
// still accumulate exactly 2× the single-call gradients — the scratch-then-
// Add formulation in Linear.Backward preserves the original accumulation
// arithmetic.
func TestGradAccumulationUnchanged(t *testing.T) {
	net := NewMLP([]int{4, 8, 2}, rng.New(3))
	x := tensor.Randn(6, 4, 1, rng.New(4))
	labels := []int{0, 1, 0, 1, 0, 1}

	logits := net.Forward(x)
	_, d := SoftmaxCrossEntropy(logits, labels)
	net.Backward(d)
	once := net.FlatGrads()
	logits = net.Forward(x)
	_, d = SoftmaxCrossEntropy(logits, labels)
	net.Backward(d)
	twice := net.FlatGrads()
	for i := range once {
		if twice[i] != 2*once[i] {
			t.Fatalf("grad %d: twice %v != 2*once %v", i, twice[i], 2*once[i])
		}
	}
}

// TestFlatIntoMatchesAllocating is the differential test for the
// buffer-reuse satellite: the Into variants must produce the exact bytes
// of the allocating originals, and round-trip through the setters.
func TestFlatIntoMatchesAllocating(t *testing.T) {
	net := NewMLP([]int{5, 7, 4}, rng.New(8))
	x := tensor.Randn(9, 5, 1, rng.New(2))
	labels := make([]int, 9)
	for i := range labels {
		labels[i] = i % 4
	}
	logits := net.Forward(x)
	_, d := SoftmaxCrossEntropy(logits, labels)
	net.Backward(d)

	gw := net.FlatGrads()
	gi := net.FlatGradsInto(make([]float64, net.NumParams()))
	ww := net.FlatWeights()
	wi := net.FlatWeightsInto(make([]float64, net.NumParams()))
	for i := range gw {
		if gw[i] != gi[i] {
			t.Fatalf("FlatGradsInto[%d] = %v, want %v", i, gi[i], gw[i])
		}
		if ww[i] != wi[i] {
			t.Fatalf("FlatWeightsInto[%d] = %v, want %v", i, wi[i], ww[i])
		}
	}

	// Into with a reused dirty buffer must fully overwrite it.
	dirty := make([]float64, net.NumParams())
	for i := range dirty {
		dirty[i] = -1e9
	}
	net.FlatGradsInto(dirty)
	for i := range dirty {
		if dirty[i] != gw[i] {
			t.Fatalf("dirty-buffer FlatGradsInto[%d] = %v, want %v", i, dirty[i], gw[i])
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("FlatGradsInto accepted a short buffer")
		}
	}()
	net.FlatGradsInto(make([]float64, 3))
}

// TestSoftmaxCrossEntropyIntoMatches: the destination-passing loss must
// equal the allocating one bitwise, including into a dirty reused buffer.
func TestSoftmaxCrossEntropyIntoMatches(t *testing.T) {
	src := rng.New(6)
	logits := tensor.Randn(10, 4, 2, src)
	labels := make([]int, 10)
	for i := range labels {
		labels[i] = i % 4
	}
	wantLoss, wantGrad := SoftmaxCrossEntropy(logits, labels)

	grad := tensor.Randn(10, 4, 3, src) // dirty workspace
	loss := SoftmaxCrossEntropyInto(grad, logits, labels)
	if loss != wantLoss {
		t.Fatalf("loss %v != %v", loss, wantLoss)
	}
	for i, v := range grad.Data() {
		if v != wantGrad.Data()[i] {
			t.Fatalf("grad %d: %v != %v", i, v, wantGrad.Data()[i])
		}
	}
}

// TestSteadyStateStepAllocsZero: after warmup, a full
// forward/loss/backward/step cycle on reused workspaces must not allocate.
func TestSteadyStateStepAllocsZero(t *testing.T) {
	net := NewMLP([]int{8, 32, 16, 4}, rng.New(1))
	opt := NewSGD(0.9, 0)
	x := tensor.Randn(16, 8, 1, rng.New(2))
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 4
	}
	dlogits := tensor.New(16, 4)
	params := net.Params()

	step := func() {
		net.ZeroGrad()
		logits := net.Forward(x)
		SoftmaxCrossEntropyInto(dlogits, logits, labels)
		net.Backward(dlogits)
		opt.Step(params, 0.05)
	}
	for i := 0; i < 3; i++ {
		step() // warm workspaces and optimizer state
	}
	if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
		t.Fatalf("steady-state nn step allocates %v times, want 0", allocs)
	}
}

// BenchmarkLinearForwardBackward measures one dense layer's full cycle at
// the sizes spanning the benchmark MLP (32→128→64→8 at batch 64).
func BenchmarkLinearForwardBackward(b *testing.B) {
	for _, sh := range []struct{ batch, in, out int }{
		{64, 32, 128},
		{64, 128, 64},
		{64, 64, 8},
		{256, 256, 256},
	} {
		b.Run(fmt.Sprintf("b%dxin%dxout%d", sh.batch, sh.in, sh.out), func(b *testing.B) {
			l := NewLinear(sh.in, sh.out, rng.New(1))
			x := tensor.Randn(sh.batch, sh.in, 1, rng.New(2))
			dout := tensor.Randn(sh.batch, sh.out, 1, rng.New(3))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Forward(x)
				l.Backward(dout)
			}
		})
	}
}

// BenchmarkMLPStep measures the full network step the runtime hot loop
// executes per worker.
func BenchmarkMLPStep(b *testing.B) {
	net := NewMLP([]int{32, 128, 64, 8}, rng.New(1))
	opt := NewSGD(0.9, 0)
	x := tensor.Randn(64, 32, 1, rng.New(2))
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = i % 8
	}
	dlogits := tensor.New(64, 8)
	params := net.Params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		logits := net.Forward(x)
		SoftmaxCrossEntropyInto(dlogits, logits, labels)
		net.Backward(dlogits)
		opt.Step(params, 0.05)
	}
}
