package nn

import (
	"testing"

	"cannikin/internal/rng"
	"cannikin/internal/tensor"
)

func TestParamOffsets(t *testing.T) {
	src := rng.New(1)
	net := NewMLP([]int{3, 5, 2}, src) // Linear(3,5), ReLU, Linear(5,2)
	got := net.ParamOffsets()
	// Linear(3,5): 15+5 = 20; ReLU: 0; Linear(5,2): 10+2 = 12.
	want := []int{0, 20, 20, 32}
	if len(got) != len(want) {
		t.Fatalf("ParamOffsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParamOffsets = %v, want %v", got, want)
		}
	}
	if got[len(got)-1] != net.NumParams() {
		t.Fatalf("final offset %d != NumParams %d", got[len(got)-1], net.NumParams())
	}
}

// TestBackwardLayerwiseMatchesBackward checks the two backward paths
// accumulate identical gradients and that the frontier sequence is the
// descending layer-offset walk ending at zero.
func TestBackwardLayerwiseMatchesBackward(t *testing.T) {
	src := rng.New(2)
	a := NewMLP([]int{4, 8, 8, 3}, src.Split("a"))
	b := NewMLP([]int{4, 8, 8, 3}, src.Split("a")) // same split label → same init
	x := tensor.Randn(6, 4, 1, src.Split("x"))
	labels := []int{0, 1, 2, 0, 1, 2}

	_, dout := SoftmaxCrossEntropy(a.Forward(x), labels)
	a.Backward(dout)

	_, dout2 := SoftmaxCrossEntropy(b.Forward(x), labels)
	var frontiers []int
	b.BackwardLayerwise(dout2, func(fr int) { frontiers = append(frontiers, fr) })

	ga, gb := a.FlatGrads(), b.FlatGrads()
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("grad %d: Backward %v != BackwardLayerwise %v", i, ga[i], gb[i])
		}
	}

	offsets := b.ParamOffsets()
	if len(frontiers) != len(offsets)-1 {
		t.Fatalf("%d frontier callbacks for %d layers", len(frontiers), len(offsets)-1)
	}
	for i, fr := range frontiers {
		if want := offsets[len(offsets)-2-i]; fr != want {
			t.Fatalf("frontier[%d] = %d, want %d (seq %v, offsets %v)", i, fr, want, frontiers, offsets)
		}
		if i > 0 && fr > frontiers[i-1] {
			t.Fatalf("frontier not monotonically non-increasing: %v", frontiers)
		}
	}
	if frontiers[len(frontiers)-1] != 0 {
		t.Fatalf("final frontier %d, want 0", frontiers[len(frontiers)-1])
	}
}

// TestBackwardLayerwiseFrontierGradsFinal verifies the readiness contract:
// at each callback, the gradient region at offsets ≥ frontier must already
// equal its final value.
func TestBackwardLayerwiseFrontierGradsFinal(t *testing.T) {
	src := rng.New(3)
	ref := NewMLP([]int{5, 7, 4}, src.Split("net"))
	net := NewMLP([]int{5, 7, 4}, src.Split("net"))
	x := tensor.Randn(3, 5, 1, src.Split("x"))
	labels := []int{1, 0, 3}

	_, dout := SoftmaxCrossEntropy(ref.Forward(x), labels)
	ref.Backward(dout)
	final := ref.FlatGrads()

	_, dout2 := SoftmaxCrossEntropy(net.Forward(x), labels)
	net.BackwardLayerwise(dout2, func(fr int) {
		got := net.FlatGrads()
		for j := fr; j < len(final); j++ {
			if got[j] != final[j] {
				t.Fatalf("frontier %d: grad %d = %v not yet final %v", fr, j, got[j], final[j])
			}
		}
	})
}
