package nn

import (
	"math"
	"testing"

	"cannikin/internal/rng"
	"cannikin/internal/tensor"
)

func TestEmbeddingForwardShapeAndLookup(t *testing.T) {
	src := rng.New(1)
	e := NewEmbedding(10, 4, src)
	ids := tensor.FromRows([][]float64{{0, 3}, {9, 9}})
	out := e.Forward(ids)
	if out.Rows() != 2 || out.Cols() != 8 {
		t.Fatalf("output %dx%d", out.Rows(), out.Cols())
	}
	// Row 0 field 0 must equal table row 0.
	for j := 0; j < 4; j++ {
		if out.At(0, j) != e.table.W.At(0, j) {
			t.Fatal("lookup wrong for field 0")
		}
		if out.At(0, 4+j) != e.table.W.At(3, j) {
			t.Fatal("lookup wrong for field 1")
		}
		if out.At(1, j) != out.At(1, 4+j) {
			t.Fatal("repeated id should repeat embedding")
		}
	}
}

func TestEmbeddingPanicsOnBadIDs(t *testing.T) {
	src := rng.New(2)
	e := NewEmbedding(5, 2, src)
	for _, bad := range [][]float64{{-1}, {5}, {1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("id %v accepted", bad)
				}
			}()
			e.Forward(tensor.FromRows([][]float64{bad}))
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Backward before Forward accepted")
		}
	}()
	NewEmbedding(5, 2, src).Backward(tensor.New(1, 2))
}

func TestEmbeddingGradientCheck(t *testing.T) {
	// Full model: embedding -> linear -> softmax. Finite differences on
	// the embedding table.
	src := rng.New(3)
	emb := NewEmbedding(6, 3, src)
	net := NewSequential(emb, NewLinear(6, 3, src))
	ids := tensor.FromRows([][]float64{{0, 2}, {4, 0}, {5, 1}})
	labels := []int{0, 1, 2}

	net.ZeroGrad()
	logits := net.Forward(ids)
	_, dlogits := SoftmaxCrossEntropy(logits, labels)
	net.Backward(dlogits)
	analytic := append([]float64(nil), emb.table.Grad.Data()...)

	const eps = 1e-6
	lossAt := func() float64 {
		loss, _ := SoftmaxCrossEntropy(net.Forward(ids), labels)
		return loss
	}
	for _, idx := range []int{0, 1, 5, 7, 12, 17} { // spread over looked-up rows
		orig := emb.table.W.Data()[idx]
		emb.table.W.Data()[idx] = orig + eps
		up := lossAt()
		emb.table.W.Data()[idx] = orig - eps
		down := lossAt()
		emb.table.W.Data()[idx] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-analytic[idx]) > 1e-5*(1+math.Abs(numeric)) {
			t.Errorf("table coord %d: numeric %v vs analytic %v", idx, numeric, analytic[idx])
		}
	}
	// Rows never looked up must have zero gradient.
	for j := 0; j < 3; j++ {
		if emb.table.Grad.At(3, j) != 0 {
			t.Fatal("unused row received gradient")
		}
	}
}

func TestEmbeddingTrainsNeuMFStyleModel(t *testing.T) {
	// A tiny two-tower-ish recommender: (user, item) id pairs -> embedding
	// -> MLP -> interact/not. Synthetic rule: users like items with the
	// same parity.
	src := rng.New(5)
	const users, items = 8, 8
	emb := NewEmbedding(users+items, 4, src)
	net := NewSequential(emb, NewLinear(8, 16, src), &ReLU{}, NewLinear(16, 2, src))
	opt := NewAdam()

	var ids [][]float64
	var labels []int
	for u := 0; u < users; u++ {
		for it := 0; it < items; it++ {
			ids = append(ids, []float64{float64(u), float64(users + it)})
			if u%2 == it%2 {
				labels = append(labels, 1)
			} else {
				labels = append(labels, 0)
			}
		}
	}
	x := tensor.FromRows(ids)
	for epoch := 0; epoch < 200; epoch++ {
		net.ZeroGrad()
		logits := net.Forward(x)
		_, d := SoftmaxCrossEntropy(logits, labels)
		net.Backward(d)
		opt.Step(net.Params(), 0.01)
	}
	if acc := Accuracy(net.Forward(x), labels); acc < 0.95 {
		t.Fatalf("NeuMF-style accuracy %v", acc)
	}
}
