package nn

import (
	"fmt"

	"cannikin/internal/rng"
	"cannikin/internal/tensor"
)

// Embedding maps integer IDs to dense vectors — the core layer of the
// paper's NeuMF recommendation workload. The forward input is a
// (batch x fields) tensor of IDs (stored as float64 indices); the output
// concatenates each field's embedding, (batch x fields*dim).
type Embedding struct {
	table *Param
	dim   int
	// cached IDs for the backward pass (backing storage reused).
	ids [][]int
	// out and dx are the forward/backward workspaces.
	out, dx *tensor.T
}

// NewEmbedding returns an embedding table of vocab rows with dim columns.
func NewEmbedding(vocab, dim int, src *rng.Source) *Embedding {
	if vocab <= 0 || dim <= 0 {
		panic(fmt.Sprintf("nn: invalid embedding %dx%d", vocab, dim))
	}
	return &Embedding{
		table: &Param{
			Name: fmt.Sprintf("embedding_%dx%d", vocab, dim),
			W:    tensor.Randn(vocab, dim, 0.1, src),
			Grad: tensor.New(vocab, dim),
		},
		dim: dim,
	}
}

// Vocab returns the table's row count.
func (e *Embedding) Vocab() int { return e.table.W.Rows() }

// Forward looks up each row's IDs and concatenates their embeddings. IDs
// must be integral values in [0, vocab).
func (e *Embedding) Forward(x *tensor.T) *tensor.T {
	batch, fields := x.Rows(), x.Cols()
	e.out = tensor.Reuse(e.out, batch, fields*e.dim)
	if cap(e.ids) >= batch {
		e.ids = e.ids[:batch]
	} else {
		e.ids = make([][]int, batch)
	}
	for i := 0; i < batch; i++ {
		row := x.Row(i)
		if cap(e.ids[i]) >= fields {
			e.ids[i] = e.ids[i][:fields]
		} else {
			e.ids[i] = make([]int, fields)
		}
		for f, vf := range row {
			id := int(vf)
			if id < 0 || id >= e.Vocab() || float64(id) != vf {
				panic(fmt.Sprintf("nn: embedding id %v out of [0, %d)", vf, e.Vocab()))
			}
			e.ids[i][f] = id
			copy(e.out.Row(i)[f*e.dim:(f+1)*e.dim], e.table.W.Row(id))
		}
	}
	return e.out
}

// Backward scatters the upstream gradient into the rows that were looked
// up; the returned input gradient is zero (IDs are not differentiable).
func (e *Embedding) Backward(dout *tensor.T) *tensor.T {
	if e.ids == nil {
		panic("nn: Embedding.Backward before Forward")
	}
	for i, rowIDs := range e.ids {
		d := dout.Row(i)
		for f, id := range rowIDs {
			g := e.table.Grad.Row(id)
			src := d[f*e.dim : (f+1)*e.dim]
			for j := range src {
				g[j] += src[j]
			}
		}
	}
	e.dx = tensor.Reuse(e.dx, len(e.ids), len(e.ids[0]))
	e.dx.Zero()
	return e.dx
}

// Params returns the embedding table.
func (e *Embedding) Params() []*Param { return []*Param{e.table} }

var _ Layer = (*Embedding)(nil)
