package nn

import (
	"fmt"
	"math"

	"cannikin/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// against integer class labels, and the gradient with respect to the
// logits (already divided by the batch size, so downstream gradients are
// per-sample averages as in Eq. 1).
func SoftmaxCrossEntropy(logits *tensor.T, labels []int) (float64, *tensor.T) {
	grad := tensor.New(logits.Rows(), logits.Cols())
	return SoftmaxCrossEntropyInto(grad, logits, labels), grad
}

// SoftmaxCrossEntropyInto is the destination-passing form of
// SoftmaxCrossEntropy: the logit gradient is written into grad (which must
// be shaped like logits and is fully overwritten) and the loss returned.
func SoftmaxCrossEntropyInto(grad, logits *tensor.T, labels []int) float64 {
	n, c := logits.Rows(), logits.Cols()
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for %d rows", len(labels), n))
	}
	if grad.Rows() != n || grad.Cols() != c {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyInto grad %dx%d, want %dx%d", grad.Rows(), grad.Cols(), n, c))
	}
	loss := 0.0
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		label := labels[i]
		if label < 0 || label >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0, %d)", label, c))
		}
		// Numerically stable softmax.
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		g := grad.Row(i)
		for j, v := range row {
			e := math.Exp(v - maxV)
			g[j] = e
			sum += e
		}
		for j := range g {
			g[j] /= sum
		}
		loss += -math.Log(math.Max(g[label], 1e-300))
		g[label] -= 1
		for j := range g {
			g[j] /= float64(n)
		}
	}
	return loss / float64(n)
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.T, labels []int) float64 {
	n := logits.Rows()
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for %d rows", len(labels), n))
	}
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// MSE computes the mean squared error between predictions and targets and
// the gradient with respect to predictions.
func MSE(pred, target *tensor.T) (float64, *tensor.T) {
	if pred.Rows() != target.Rows() || pred.Cols() != target.Cols() {
		panic("nn: MSE shape mismatch")
	}
	n := float64(pred.Rows() * pred.Cols())
	grad := pred.Clone().Sub(target)
	loss := grad.SqNorm() / n
	grad.Scale(2 / n)
	return loss, grad
}
