package nn

import (
	"fmt"

	"cannikin/internal/rng"
	"cannikin/internal/tensor"
)

// Dropout randomly zeroes activations during training with probability p,
// scaling survivors by 1/(1-p) (inverted dropout), and passes inputs
// through untouched in evaluation mode.
type Dropout struct {
	// P is the drop probability in [0, 1).
	P float64
	// Train toggles training mode; evaluation mode is the identity.
	Train bool

	src *rng.Source
	// active reports whether the last Forward applied a mask; the mask and
	// output workspaces persist across mode switches.
	active        bool
	mask, out, dx *tensor.T
}

// NewDropout returns a dropout layer in training mode.
func NewDropout(p float64, src *rng.Source) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0, 1)", p))
	}
	return &Dropout{P: p, Train: true, src: src.Split("dropout")}
}

// Forward applies the dropout mask (training) or the identity (eval),
// drawing one uniform variate per element in training mode.
func (d *Dropout) Forward(x *tensor.T) *tensor.T {
	if !d.Train || d.P == 0 {
		d.active = false
		return x
	}
	d.active = true
	scale := 1 / (1 - d.P)
	d.mask = tensor.Reuse(d.mask, x.Rows(), x.Cols())
	d.out = tensor.Reuse(d.out, x.Rows(), x.Cols())
	md, od := d.mask.Data(), d.out.Data()
	for i, v := range x.Data() {
		if d.src.Float64() < d.P {
			od[i] = 0
			md[i] = 0
		} else {
			od[i] = v * scale
			md[i] = scale
		}
	}
	return d.out
}

// Backward routes gradients through the surviving units.
func (d *Dropout) Backward(dout *tensor.T) *tensor.T {
	if !d.active {
		return dout
	}
	if dout.Rows() != d.mask.Rows() || dout.Cols() != d.mask.Cols() {
		panic(fmt.Sprintf("nn: Dropout.Backward shape %dx%d, mask %dx%d",
			dout.Rows(), dout.Cols(), d.mask.Rows(), d.mask.Cols()))
	}
	d.dx = tensor.Reuse(d.dx, dout.Rows(), dout.Cols())
	dd, md := d.dx.Data(), d.mask.Data()
	for i, v := range dout.Data() {
		dd[i] = v * md[i]
	}
	return d.dx
}

// Params returns nil: dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

var _ Layer = (*Dropout)(nil)
