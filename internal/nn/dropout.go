package nn

import (
	"fmt"

	"cannikin/internal/rng"
	"cannikin/internal/tensor"
)

// Dropout randomly zeroes activations during training with probability p,
// scaling survivors by 1/(1-p) (inverted dropout), and passes inputs
// through untouched in evaluation mode.
type Dropout struct {
	// P is the drop probability in [0, 1).
	P float64
	// Train toggles training mode; evaluation mode is the identity.
	Train bool

	src  *rng.Source
	mask *tensor.T
}

// NewDropout returns a dropout layer in training mode.
func NewDropout(p float64, src *rng.Source) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0, 1)", p))
	}
	return &Dropout{P: p, Train: true, src: src.Split("dropout")}
}

// Forward applies the dropout mask (training) or the identity (eval).
func (d *Dropout) Forward(x *tensor.T) *tensor.T {
	if !d.Train || d.P == 0 {
		d.mask = nil
		return x
	}
	scale := 1 / (1 - d.P)
	d.mask = tensor.New(x.Rows(), x.Cols())
	out := x.Clone()
	for i := range out.Data() {
		if d.src.Float64() < d.P {
			out.Data()[i] = 0
		} else {
			out.Data()[i] *= scale
			d.mask.Data()[i] = scale
		}
	}
	return out
}

// Backward routes gradients through the surviving units.
func (d *Dropout) Backward(dout *tensor.T) *tensor.T {
	if d.mask == nil {
		return dout
	}
	return dout.Clone().Hadamard(d.mask)
}

// Params returns nil: dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

var _ Layer = (*Dropout)(nil)
