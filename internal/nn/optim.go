package nn

import (
	"fmt"
	"math"

	"cannikin/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param, lr float64)
}

// SGD is stochastic gradient descent with optional momentum and (coupled)
// weight decay.
type SGD struct {
	Momentum    float64
	WeightDecay float64

	velocity map[*Param]*tensor.T
}

// NewSGD returns an SGD optimizer.
func NewSGD(momentum, weightDecay float64) *SGD {
	return &SGD{Momentum: momentum, WeightDecay: weightDecay, velocity: make(map[*Param]*tensor.T)}
}

// Step applies one update: v = μv + (g + λw); w -= lr·v.
func (o *SGD) Step(params []*Param, lr float64) {
	for _, p := range params {
		v, ok := o.velocity[p]
		if !ok {
			v = tensor.New(p.W.Rows(), p.W.Cols())
			o.velocity[p] = v
		}
		gd, wd, vd := p.Grad.Data(), p.W.Data(), v.Data()
		for i := range vd {
			g := gd[i] + o.WeightDecay*wd[i]
			vd[i] = o.Momentum*vd[i] + g
			wd[i] -= lr * vd[i]
		}
	}
}

// FlatVelocity returns the momentum state concatenated in params order —
// the optimizer half of a training checkpoint. Parameters the optimizer
// has never stepped contribute zeros, so the result always has exactly as
// many elements as Network.FlatWeights for the same parameter list.
func (o *SGD) FlatVelocity(params []*Param) []float64 {
	n := 0
	for _, p := range params {
		n += p.W.Rows() * p.W.Cols()
	}
	out := make([]float64, n)
	off := 0
	for _, p := range params {
		sz := p.W.Rows() * p.W.Cols()
		if v, ok := o.velocity[p]; ok {
			copy(out[off:off+sz], v.Data())
		}
		off += sz
	}
	return out
}

// SetFlatVelocity seeds the momentum state from a flat vector in params
// order — restoring the optimizer half of a checkpoint so a resumed run
// continues the exact velocity trajectory instead of restarting from zero.
func (o *SGD) SetFlatVelocity(params []*Param, flat []float64) error {
	n := 0
	for _, p := range params {
		n += p.W.Rows() * p.W.Cols()
	}
	if len(flat) != n {
		return fmt.Errorf("nn: velocity dim %d, want %d", len(flat), n)
	}
	off := 0
	for _, p := range params {
		sz := p.W.Rows() * p.W.Cols()
		v, ok := o.velocity[p]
		if !ok {
			v = tensor.New(p.W.Rows(), p.W.Cols())
			o.velocity[p] = v
		}
		copy(v.Data(), flat[off:off+sz])
		off += sz
	}
	return nil
}

// Adam is the Adam optimizer (Kingma & Ba).
type Adam struct {
	Beta1, Beta2, Eps float64
	// DecoupledDecay applies AdamW-style weight decay when non-zero.
	DecoupledDecay float64

	m, v map[*Param]*tensor.T
	t    int
}

// NewAdam returns Adam with the canonical hyperparameters.
func NewAdam() *Adam {
	return &Adam{Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.T), v: make(map[*Param]*tensor.T)}
}

// NewAdamW returns Adam with decoupled weight decay (Loshchilov & Hutter),
// the optimizer of the paper's BERT workload.
func NewAdamW(weightDecay float64) *Adam {
	a := NewAdam()
	a.DecoupledDecay = weightDecay
	return a
}

// Step applies one Adam update with bias correction.
func (o *Adam) Step(params []*Param, lr float64) {
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = tensor.New(p.W.Rows(), p.W.Cols())
			o.m[p] = m
			o.v[p] = tensor.New(p.W.Rows(), p.W.Cols())
		}
		v := o.v[p]
		gd, wd := p.Grad.Data(), p.W.Data()
		md, vd := m.Data(), v.Data()
		for i := range wd {
			g := gd[i]
			md[i] = o.Beta1*md[i] + (1-o.Beta1)*g
			vd[i] = o.Beta2*vd[i] + (1-o.Beta2)*g*g
			mHat := md[i] / c1
			vHat := vd[i] / c2
			wd[i] -= lr * (mHat/(math.Sqrt(vHat)+o.Eps) + o.DecoupledDecay*wd[i])
		}
	}
}

// LRScaler adapts the learning rate when the batch size changes during
// adaptive batch-size training (Table 5's "LR scaler" column).
type LRScaler interface {
	// Scale returns the learning rate for the given batch size, where
	// baseLR was tuned at baseBatch. noise is the current GNS estimate
	// (ignored by scalers that don't use it).
	Scale(baseLR float64, batch, baseBatch int, noise float64) float64
}

// AdaScale dampens linear LR scaling by the gradient noise scale: the gain
// over baseLR approaches B/B0 when the noise dominates (φ >> B) and 1 when
// gradients are clean, mirroring AdaScale's gain rule r ∈ [1, B/B0].
type AdaScale struct{}

// Scale implements LRScaler.
func (AdaScale) Scale(baseLR float64, batch, baseBatch int, noise float64) float64 {
	if batch <= 0 || baseBatch <= 0 {
		return baseLR
	}
	b, b0 := float64(batch), float64(baseBatch)
	if noise < 0 {
		noise = 0
	}
	gain := (noise + b0) / (noise + b) * (b / b0)
	return baseLR * gain
}

// SquareRoot scales the learning rate with sqrt(B/B0), the common rule for
// adaptive-gradient optimizers (paper's BERT and NeuMF workloads).
type SquareRoot struct{}

// Scale implements LRScaler.
func (SquareRoot) Scale(baseLR float64, batch, baseBatch int, _ float64) float64 {
	if batch <= 0 || baseBatch <= 0 {
		return baseLR
	}
	return baseLR * math.Sqrt(float64(batch)/float64(baseBatch))
}

// LinearScale scales the learning rate with B/B0 (Goyal et al.).
type LinearScale struct{}

// Scale implements LRScaler.
func (LinearScale) Scale(baseLR float64, batch, baseBatch int, _ float64) float64 {
	if batch <= 0 || baseBatch <= 0 {
		return baseLR
	}
	return baseLR * float64(batch) / float64(baseBatch)
}
