package nn

import (
	"math"
	"testing"

	"cannikin/internal/rng"
	"cannikin/internal/tensor"
)

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(0.5, rng.New(1))
	d.Train = false
	x := tensor.FromRows([][]float64{{1, 2, 3}})
	y := d.Forward(x)
	for j := 0; j < 3; j++ {
		if y.At(0, j) != x.At(0, j) {
			t.Fatal("eval-mode dropout changed values")
		}
	}
	// Backward is also the identity.
	g := d.Backward(tensor.FromRows([][]float64{{4, 5, 6}}))
	if g.At(0, 1) != 5 {
		t.Fatal("eval-mode backward changed gradient")
	}
}

func TestDropoutTrainPreservesExpectation(t *testing.T) {
	d := NewDropout(0.3, rng.New(2))
	x := tensor.New(200, 200)
	for i := range x.Data() {
		x.Data()[i] = 1
	}
	y := d.Forward(x)
	sum, zeros := 0.0, 0
	for _, v := range y.Data() {
		sum += v
		if v == 0 {
			zeros++
		}
	}
	n := float64(len(y.Data()))
	if math.Abs(sum/n-1) > 0.02 {
		t.Fatalf("inverted dropout mean %v, want ~1", sum/n)
	}
	if frac := float64(zeros) / n; math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("drop fraction %v, want ~0.3", frac)
	}
}

func TestDropoutBackwardMasksGradient(t *testing.T) {
	d := NewDropout(0.5, rng.New(3))
	x := tensor.New(4, 8)
	for i := range x.Data() {
		x.Data()[i] = 1
	}
	y := d.Forward(x)
	g := tensor.New(4, 8)
	for i := range g.Data() {
		g.Data()[i] = 1
	}
	dx := d.Backward(g)
	for i := range y.Data() {
		if (y.Data()[i] == 0) != (dx.Data()[i] == 0) {
			t.Fatal("gradient mask disagrees with forward mask")
		}
		if y.Data()[i] != 0 && dx.Data()[i] != 2 {
			t.Fatalf("survivor gradient %v, want 1/(1-p)=2", dx.Data()[i])
		}
	}
}

func TestDropoutGradientCheckThroughNetwork(t *testing.T) {
	// With a frozen mask (re-running Forward would resample), check the
	// chain rule through Linear -> Dropout -> Linear by comparing Backward
	// against manual expectations on a fixed mask is covered above; here
	// verify a full training loop still learns with dropout present.
	src := rng.New(4)
	drop := NewDropout(0.2, src)
	net := NewSequential(NewLinear(4, 16, src), &ReLU{}, drop, NewLinear(16, 2, src))
	opt := NewSGD(0.9, 0)
	x := tensor.New(64, 4)
	labels := make([]int, 64)
	for i := 0; i < 64; i++ {
		v := src.Norm(0, 1)
		x.Set(i, 0, v)
		if v > 0 {
			labels[i] = 1
		}
	}
	for epoch := 0; epoch < 150; epoch++ {
		net.ZeroGrad()
		logits := net.Forward(x)
		_, d := SoftmaxCrossEntropy(logits, labels)
		net.Backward(d)
		opt.Step(net.Params(), 0.05)
	}
	drop.Train = false
	if acc := Accuracy(net.Forward(x), labels); acc < 0.95 {
		t.Fatalf("accuracy with dropout %v", acc)
	}
}

func TestNewDropoutValidation(t *testing.T) {
	for _, p := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewDropout(%v) accepted", p)
				}
			}()
			NewDropout(p, rng.New(1))
		}()
	}
}
