package cluster

import (
	"fmt"

	"cannikin/internal/gpu"
	"cannikin/internal/rng"
	"cannikin/internal/simnet"
)

// Interconnect parameters for the presets: a fast datacenter fabric
// (10 GB/s effective per link, 20 µs hop latency). The paper's testbeds
// show batch times that respond strongly to the compute allocation, i.e.
// communication does not swamp compute; this bandwidth reproduces that
// regime (comm-bound at small batches, compute-bound at large ones).
const (
	presetLinkGBps = 10
	presetLatencyS = 20e-6
)

// PresetA builds the paper's Cluster A (Table 3): a 3-node cluster with an
// RTX A5000 (i9-10980XE host), an RTX A4000 (Xeon W-2255), and a Quadro
// P4000 (Xeon W-2102). The host CPUs differ from the GPU speed ordering,
// which is what creates mixed compute/communication bottlenecks.
func PresetA(src *rng.Source) (*Cluster, error) {
	c, err := fromModels("cluster-a", []string{"A5000", "A4000", "P4000"}, src)
	if err != nil {
		return nil, err
	}
	for i, cpu := range []float64{1.25, 1.0, 0.55} {
		c.Devices[i].CPUSpeed = cpu
	}
	return c, nil
}

// PresetB builds the paper's Cluster B (Table 4): 16 GPUs across ten
// servers — 4x A100, 4x V100, and 8x RTX 6000. Each GPU is one
// data-parallel node.
func PresetB(src *rng.Source) (*Cluster, error) {
	models := make([]string, 0, 16)
	for i := 0; i < 4; i++ {
		models = append(models, "A100")
	}
	for i := 0; i < 4; i++ {
		models = append(models, "V100")
	}
	for i := 0; i < 8; i++ {
		models = append(models, "RTX6000")
	}
	c, err := fromModels("cluster-b", models, src)
	if err != nil {
		return nil, err
	}
	// Host CPUs per Table 4: Xeon Platinum 8380 x2 (A100 server), Xeon
	// Gold 6230 x2 (V100 server), Xeon Gold 6126 x2 (RTX servers).
	for i := range c.Devices {
		switch {
		case i < 4:
			c.Devices[i].CPUSpeed = 1.5
		case i < 8:
			c.Devices[i].CPUSpeed = 1.0
		default:
			c.Devices[i].CPUSpeed = 0.9
		}
	}
	return c, nil
}

// PresetC builds the paper's Cluster C (Section 6): 16 identical RTX 6000
// nodes made heterogeneous by GPU sharing — co-located dummy workloads
// leave each node a different fraction of compute and memory.
func PresetC(src *rng.Source) (*Cluster, error) {
	c, err := fromModels("cluster-c", repeat("RTX6000", 16), src)
	if err != nil {
		return nil, err
	}
	// Deterministic sharing pattern spanning 0.45x..1.0x of the device.
	fractions := []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95, 0.5, 0.7, 0.9, 0.6}
	for i, d := range c.Devices {
		d.CPUSpeed = 0.9            // RTX servers' Xeon Gold 6126
		mem := fractions[i]/2 + 0.5 // memory shared less aggressively
		if err := d.SetSharing(fractions[i], mem); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Preset builds a named preset: "a", "b", or "c".
func Preset(name string, src *rng.Source) (*Cluster, error) {
	switch name {
	case "a", "A":
		return PresetA(src)
	case "b", "B":
		return PresetB(src)
	case "c", "C":
		return PresetC(src)
	default:
		return nil, fmt.Errorf("cluster: unknown preset %q (want a, b, or c)", name)
	}
}

// FromModels builds a custom cluster from catalog model keys with the
// default interconnect.
func FromModels(name string, models []string, src *rng.Source) (*Cluster, error) {
	return fromModels(name, models, src)
}

// FromModelsWithRing builds a custom cluster with an explicit interconnect
// (used by the network-sensitivity experiments).
func FromModelsWithRing(name string, models []string, ring simnet.RingSpec, src *rng.Source) (*Cluster, error) {
	devices := make([]*gpu.Device, len(models))
	for i, key := range models {
		d, err := gpu.NewDevice(fmt.Sprintf("%s/node%02d-%s", name, i, key), key, src)
		if err != nil {
			return nil, err
		}
		devices[i] = d
	}
	return New(name, devices, ring, src)
}

func fromModels(name string, models []string, src *rng.Source) (*Cluster, error) {
	devices := make([]*gpu.Device, len(models))
	for i, key := range models {
		d, err := gpu.NewDevice(fmt.Sprintf("%s/node%02d-%s", name, i, key), key, src)
		if err != nil {
			return nil, err
		}
		devices[i] = d
	}
	ring := simnet.UniformRing(len(models), presetLinkGBps, presetLatencyS)
	return New(name, devices, ring, src)
}

func repeat(s string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s
	}
	return out
}
