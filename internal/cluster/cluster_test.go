package cluster

import (
	"strings"
	"testing"

	"cannikin/internal/gpu"
	"cannikin/internal/rng"
	"cannikin/internal/simnet"
	"cannikin/internal/stats"
)

func testProfile() gpu.JobProfile {
	return gpu.JobProfile{
		Name:              "resnet50-like",
		FwdFLOPsPerSample: 4.1e9,
		BwdFLOPsPerSample: 8.2e9,
		BytesPerSample:    600e3,
		ParamBytes:        102e6,
		UpdateFLOPs:       1.3e8,
		MemPerSampleBytes: 30e6,
		ModelMemBytes:     3 * 102e6,
	}
}

func TestPresets(t *testing.T) {
	src := rng.New(1)
	a, err := PresetA(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 3 {
		t.Fatalf("cluster A has %d nodes, want 3", a.N())
	}
	b, err := PresetB(src)
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != 16 {
		t.Fatalf("cluster B has %d nodes, want 16", b.N())
	}
	counts := map[string]int{}
	for _, d := range b.Devices {
		counts[d.Model.Name]++
	}
	if counts["A100"] != 4 || counts["Tesla V100"] != 4 || counts["Quadro RTX 6000"] != 8 {
		t.Fatalf("cluster B composition wrong: %v", counts)
	}
	c, err := PresetC(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 16 {
		t.Fatalf("cluster C has %d nodes, want 16", c.N())
	}
	// Cluster C: same model everywhere but heterogeneous speeds.
	fractions := map[float64]bool{}
	for _, d := range c.Devices {
		if !strings.Contains(d.Model.Name, "RTX 6000") {
			t.Fatalf("cluster C has foreign device %s", d.Model.Name)
		}
		fractions[d.SpeedFraction] = true
	}
	if len(fractions) < 5 {
		t.Fatalf("cluster C sharing not heterogeneous: %v", fractions)
	}
}

func TestPresetByName(t *testing.T) {
	src := rng.New(2)
	for _, name := range []string{"a", "B", "c"} {
		if _, err := Preset(name, src); err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
	}
	if _, err := Preset("z", src); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestNewValidation(t *testing.T) {
	src := rng.New(3)
	if _, err := New("x", nil, simnet.UniformRing(1, 1, 0), src); err == nil {
		t.Fatal("empty device list accepted")
	}
	d, _ := gpu.NewDevice("d", "V100", src)
	if _, err := New("x", []*gpu.Device{d}, simnet.UniformRing(2, 1, 0), src); err == nil {
		t.Fatal("mismatched ring accepted")
	}
}

func TestStepValidation(t *testing.T) {
	src := rng.New(4)
	c, err := PresetA(src)
	if err != nil {
		t.Fatal(err)
	}
	p := testProfile()
	if _, err := c.Step(p, []int{1, 1}); err == nil {
		t.Fatal("wrong batch count accepted")
	}
	if _, err := c.Step(p, []int{1, 0, 1}); err == nil {
		t.Fatal("zero batch accepted")
	}
	caps := c.Caps(p)
	if _, err := c.Step(p, []int{caps[0] + 1, 1, 1}); err == nil {
		t.Fatal("over-memory batch accepted")
	}
	bad := p
	bad.ParamBytes = 0
	if _, err := c.Step(bad, []int{1, 1, 1}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestStepProducesConsistentTimeline(t *testing.T) {
	src := rng.New(5)
	c, err := PresetA(src)
	if err != nil {
		t.Fatal(err)
	}
	p := testProfile()
	res, err := c.Step(p, []int{24, 16, 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatal("non-positive batch time")
	}
	for i, ns := range res.PerNode {
		if ns.A <= 0 || ns.P <= 0 {
			t.Fatalf("node %d: non-positive compute split %+v", i, ns)
		}
		if ns.ComputeDone > res.Time {
			t.Fatalf("node %d finished compute after the batch completed", i)
		}
		if ns.Finish != res.Time {
			t.Fatalf("node %d finish %v != batch time %v (synchronized training)", i, ns.Finish, res.Time)
		}
		if ns.Gamma <= 0 || ns.Gamma > 1 {
			t.Fatalf("node %d gamma %v out of range", i, ns.Gamma)
		}
		if ns.To < 0 || ns.Tu <= 0 {
			t.Fatalf("node %d comm observations %+v", i, ns)
		}
	}
	// Batch time must cover the slowest node's compute plus the last
	// bucket, and not be absurdly larger than compute + full comm.
	slowest := 0.0
	for _, ns := range res.PerNode {
		if ns.ComputeDone > slowest {
			slowest = ns.ComputeDone
		}
	}
	if res.Time < slowest {
		t.Fatalf("batch time %v below slowest compute %v", res.Time, slowest)
	}
	plan, err := simnet.PlanBuckets(c.Ring, p.ParamBytes, c.BucketBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time > slowest+plan.TComm*1.5 {
		t.Fatalf("batch time %v too far above compute %v + comm %v", res.Time, slowest, plan.TComm)
	}
}

func TestStepMatchesAnalyticModelClosely(t *testing.T) {
	// The simulator is richer than Eq. 7, but on a quiet cluster the
	// average step time should stay within a few percent of the analytic
	// prediction.
	src := rng.New(6)
	c, err := PresetA(src)
	if err != nil {
		t.Fatal(err)
	}
	p := testProfile()
	model, err := c.TrueModel(p)
	if err != nil {
		t.Fatal(err)
	}
	batches := []int{24, 16, 8}
	measured, err := c.MeasuredTime(p, batches, 60)
	if err != nil {
		t.Fatal(err)
	}
	predicted := model.PredictTime(batches)
	if stats.RelErr(measured, predicted) > 0.08 {
		t.Fatalf("analytic %v vs simulated %v differ by %.1f%%", predicted, measured, 100*stats.RelErr(measured, predicted))
	}
}

func TestBalancedAllocationFasterThanEvenSplit(t *testing.T) {
	// The heart of the paper: on a heterogeneous cluster, an even split is
	// slower than a speed-proportional split of the same total batch.
	src := rng.New(7)
	c, err := PresetA(src)
	if err != nil {
		t.Fatal(err)
	}
	p := testProfile()
	even, err := c.MeasuredTime(p, []int{16, 16, 16}, 30)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := c.MeasuredTime(p, []int{24, 16, 8}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if balanced >= even {
		t.Fatalf("balanced %v not faster than even %v", balanced, even)
	}
}

func TestTrueModelReflectsDevices(t *testing.T) {
	src := rng.New(8)
	c, err := PresetB(src)
	if err != nil {
		t.Fatal(err)
	}
	p := testProfile()
	m, err := c.TrueModel(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// A100 nodes (0-3) must be faster than RTX6000 nodes (8-15).
	if m.Nodes[0].Compute(64) >= m.Nodes[8].Compute(64) {
		t.Fatal("A100 not faster than RTX6000 in true model")
	}
	if m.Gamma <= 0 || m.Gamma > 1 {
		t.Fatalf("gamma %v", m.Gamma)
	}
	if m.To <= 0 || m.Tu <= 0 {
		t.Fatalf("comm constants %v %v", m.To, m.Tu)
	}
	// ResNet-50's ~102 MB gradient spans multiple buckets: To > Tu.
	if m.To <= m.Tu {
		t.Fatalf("To %v should exceed Tu %v for a multi-bucket model", m.To, m.Tu)
	}
}

func TestCommMeasurementsAreUnbiasedAndContentionWidensNoise(t *testing.T) {
	src := rng.New(9)
	c, err := PresetA(src)
	if err != nil {
		t.Fatal(err)
	}
	p := testProfile()
	m, err := c.TrueModel(p)
	if err != nil {
		t.Fatal(err)
	}
	// Find an epoch with at least one contended and one quiet node.
	epoch := 0
	for ; epoch < 200; epoch++ {
		c.BeginEpoch(epoch)
		var quiet, contended bool
		for i := 0; i < c.N(); i++ {
			if c.Contended(i) {
				contended = true
			} else {
				quiet = true
			}
		}
		if quiet && contended {
			break
		}
	}
	if epoch == 200 {
		t.Fatal("never found a mixed-contention epoch")
	}
	var wQuiet, wCont stats.Welford
	for s := 0; s < 200; s++ {
		res, err := c.Step(p, []int{8, 8, 8})
		if err != nil {
			t.Fatal(err)
		}
		for i, ns := range res.PerNode {
			if c.Contended(i) {
				wCont.Add(ns.To)
			} else {
				wQuiet.Add(ns.To)
			}
		}
	}
	if stats.RelErr(wQuiet.Mean(), m.To) > 0.05 {
		t.Fatalf("quiet-node To mean %v vs truth %v", wQuiet.Mean(), m.To)
	}
	if wCont.Var() <= wQuiet.Var()*2 {
		t.Fatalf("contended variance %v not clearly above quiet %v", wCont.Var(), wQuiet.Var())
	}
}

func TestStepDeterministicAcrossIdenticalClusters(t *testing.T) {
	p := testProfile()
	run := func() []float64 {
		c, err := PresetA(rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		var times []float64
		for s := 0; s < 20; s++ {
			res, err := c.Step(p, []int{20, 12, 6})
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, res.Time)
		}
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic step %d: %v != %v", i, a[i], b[i])
		}
	}
}

func TestCapsAndCapacity(t *testing.T) {
	src := rng.New(10)
	c, err := PresetB(src)
	if err != nil {
		t.Fatal(err)
	}
	p := testProfile()
	caps := c.Caps(p)
	if len(caps) != 16 {
		t.Fatalf("caps len %d", len(caps))
	}
	total := 0
	for i, cp := range caps {
		if cp <= 0 {
			t.Fatalf("node %d cap %d", i, cp)
		}
		total += cp
	}
	if c.Capacity(p) != total {
		t.Fatal("Capacity != sum of caps")
	}
	// A100 (40 GB) caps must beat RTX6000 (24 GB) caps.
	if caps[0] <= caps[8] {
		t.Fatalf("A100 cap %d <= RTX6000 cap %d", caps[0], caps[8])
	}
}

func TestMeasuredTimeValidation(t *testing.T) {
	src := rng.New(11)
	c, err := PresetA(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.MeasuredTime(testProfile(), []int{8, 8, 8}, 0); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestFromModels(t *testing.T) {
	src := rng.New(12)
	c, err := FromModels("mini", []string{"H100", "P100"}, src)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 2 {
		t.Fatalf("N = %d", c.N())
	}
	if _, err := FromModels("bad", []string{"NOPE"}, src); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestFromModelsWithRing(t *testing.T) {
	src := rng.New(13)
	ring := simnet.UniformRing(2, 3.5, 1e-5)
	c, err := FromModelsWithRing("custom-ring", []string{"A100", "V100"}, ring, src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ring.LinkGBps[0] != 3.5 {
		t.Fatalf("ring bandwidth %v, want 3.5", c.Ring.LinkGBps[0])
	}
	if _, err := FromModelsWithRing("bad", []string{"NOPE"}, ring, src); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := FromModelsWithRing("bad", []string{"A100"}, ring, src); err == nil {
		t.Fatal("ring/device count mismatch accepted")
	}
}
