// Package cluster assembles heterogeneous GPU devices and an interconnect
// into the simulated testbeds of the paper's evaluation, and provides the
// ground-truth batch-step simulator that every training system runs
// against.
//
// The simulator is deliberately richer than Cannikin's analytic model:
// gradient buckets are discrete, synchronization of bucket j cannot start
// before bucket j−1 finished, and all timings carry measurement noise (plus
// occasional per-epoch contention on some nodes). Cannikin must therefore
// *learn* the cluster — prediction error against this simulator is the
// paper's Section 5.3 experiment.
package cluster

import (
	"errors"
	"fmt"

	"cannikin/internal/gpu"
	"cannikin/internal/optperf"
	"cannikin/internal/rng"
	"cannikin/internal/simnet"
)

// Cluster is a set of devices joined by an all-reduce ring.
type Cluster struct {
	Name    string
	Devices []*gpu.Device
	Ring    simnet.RingSpec
	// BucketBytes is the DDP gradient bucket cap.
	BucketBytes float64

	src *rng.Source
	// contended flags nodes suffering interference this epoch: their
	// communication-constant measurements are much noisier.
	contended []bool
	// commNoise is the per-node log-sigma of comm measurements this epoch.
	commNoise []float64
}

// New assembles a cluster. The ring must have exactly one link per device.
func New(name string, devices []*gpu.Device, ring simnet.RingSpec, src *rng.Source) (*Cluster, error) {
	if len(devices) == 0 {
		return nil, errors.New("cluster: no devices")
	}
	if ring.Nodes() != len(devices) {
		return nil, fmt.Errorf("cluster: ring has %d links for %d devices", ring.Nodes(), len(devices))
	}
	if err := ring.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		Name:        name,
		Devices:     devices,
		Ring:        ring,
		BucketBytes: simnet.DefaultBucketBytes,
		src:         src.Split("cluster/" + name),
		contended:   make([]bool, len(devices)),
		commNoise:   make([]float64, len(devices)),
	}
	c.BeginEpoch(0)
	return c, nil
}

// N returns the number of nodes (devices).
func (c *Cluster) N() int { return len(c.Devices) }

// Caps returns each node's memory-constrained maximum local batch size.
func (c *Cluster) Caps(p gpu.JobProfile) []int {
	caps := make([]int, c.N())
	for i, d := range c.Devices {
		caps[i] = d.MaxBatch(p)
	}
	return caps
}

// Capacity returns the cluster-wide maximum total batch size.
func (c *Cluster) Capacity(p gpu.JobProfile) int {
	total := 0
	for _, cap := range c.Caps(p) {
		total += cap
	}
	return total
}

// BeginEpoch re-rolls per-epoch interference: each node independently has a
// small chance of being contended for the epoch, which inflates the noise
// of its communication-constant measurements (the "contingency in gradient
// synchronization" of Section 5.3).
func (c *Cluster) BeginEpoch(epoch int) {
	es := c.src.Split(fmt.Sprintf("epoch/%d", epoch))
	for i := range c.Devices {
		c.contended[i] = es.Float64() < 0.15
		if c.contended[i] {
			c.commNoise[i] = 0.30
		} else {
			c.commNoise[i] = 0.03
		}
	}
}

// Contended reports whether node i is suffering interference this epoch.
func (c *Cluster) Contended(i int) bool { return c.contended[i] }

// SetComputeShare throttles node i to the given fraction of its device's
// compute mid-run (a tenant arriving or leaving under dynamic resource
// allocation). Memory is unaffected.
func (c *Cluster) SetComputeShare(i int, share float64) error {
	if i < 0 || i >= c.N() {
		return fmt.Errorf("cluster: node %d of %d", i, c.N())
	}
	return c.Devices[i].SetSharing(share, c.Devices[i].MemFraction)
}

// ComputeShare returns node i's current compute fraction.
func (c *Cluster) ComputeShare(i int) (float64, error) {
	if i < 0 || i >= c.N() {
		return 0, fmt.Errorf("cluster: node %d of %d", i, c.N())
	}
	return c.Devices[i].SpeedFraction, nil
}

// LinkBandwidth returns node i's current ring link bandwidth in GB/s.
func (c *Cluster) LinkBandwidth(i int) (float64, error) {
	if i < 0 || i >= c.N() {
		return 0, fmt.Errorf("cluster: node %d of %d", i, c.N())
	}
	return c.Ring.LinkGBps[i], nil
}

// SetLinkBandwidth changes node i's ring link bandwidth mid-run
// (congestion or a routing change under dynamic network conditions). The
// ring's bottleneck, and therefore every subsequent all-reduce, follows.
func (c *Cluster) SetLinkBandwidth(i int, gbps float64) error {
	if i < 0 || i >= c.N() {
		return fmt.Errorf("cluster: node %d of %d", i, c.N())
	}
	if gbps <= 0 {
		return fmt.Errorf("cluster: node %d bandwidth %v GB/s", i, gbps)
	}
	c.Ring.LinkGBps[i] = gbps
	return nil
}

// NodeStep is one node's observations from one executed batch.
type NodeStep struct {
	Batch int
	// A and P are the measured non-backprop and backprop times.
	A, P float64
	// Gamma, To, Tu are this node's (noisy) measurements of the cluster
	// communication constants.
	Gamma, To, Tu float64
	// ComputeDone is when this node finished its local gradient; Finish is
	// when it completed the last bucket synchronization.
	ComputeDone, Finish float64
}

// StepResult is the outcome of one synchronized training step.
type StepResult struct {
	// Time is the cluster's batch processing time (all nodes synchronized).
	Time float64
	// PerNode holds each node's observations.
	PerNode []NodeStep
}

// Step executes one synchronized data-parallel batch with the given local
// batch sizes and returns the simulated timings. Local batches must be
// positive and within device memory.
func (c *Cluster) Step(p gpu.JobProfile, batches []int) (StepResult, error) {
	if err := p.Validate(); err != nil {
		return StepResult{}, err
	}
	if len(batches) != c.N() {
		return StepResult{}, fmt.Errorf("cluster: %d batches for %d nodes", len(batches), c.N())
	}
	for i, b := range batches {
		if b <= 0 {
			return StepResult{}, fmt.Errorf("cluster: node %d batch %d", i, b)
		}
		if cap := c.Devices[i].MaxBatch(p); b > cap {
			return StepResult{}, fmt.Errorf("cluster: node %d batch %d exceeds memory cap %d", i, b, cap)
		}
	}

	plan, err := simnet.PlanBuckets(c.Ring, p.ParamBytes, c.BucketBytes)
	if err != nil {
		return StepResult{}, err
	}
	nb := plan.NumBuckets
	gamma := simnet.OverlapGamma(nb)

	res := StepResult{PerNode: make([]NodeStep, c.N())}
	for i, d := range c.Devices {
		m := d.MeasureCompute(p, batches[i])
		res.PerNode[i] = NodeStep{
			Batch:       batches[i],
			A:           m.A,
			P:           m.P,
			ComputeDone: m.A + m.P,
		}
	}

	// Bucket-level timeline: bucket j on node i becomes ready at a fixed
	// proportion of that node's backprop; its ring synchronization starts
	// when every node is ready and the previous bucket finished.
	readyAt := func(i, j int) float64 {
		ns := res.PerNode[i]
		if nb == 1 {
			return ns.A + ns.P
		}
		frac := gamma + (1-gamma)*float64(j)/float64(nb-1)
		return ns.A + ns.P*frac
	}
	var finishPrev float64
	for j := 0; j < nb; j++ {
		start := finishPrev
		for i := range c.Devices {
			if r := readyAt(i, j); r > start {
				start = r
			}
		}
		// Small shared jitter on the wire time (stragglers, retransmits).
		finishPrev = start + plan.PerBucket*c.src.LogNormFactor(0.02)
	}
	res.Time = finishPrev
	for i := range res.PerNode {
		res.PerNode[i].Finish = res.Time
	}

	// Each node measures the communication constants with its own (this
	// epoch's) precision. Contended nodes see their bucket completions
	// through interference-induced queueing, so their measurements are
	// both noisy *and biased upward* — the "contingency in gradient
	// synchronization" behind Section 5.3's inverse-variance weighting.
	for i := range res.PerNode {
		sigma := c.commNoise[i]
		inflate := 1.0
		if c.contended[i] {
			if d := c.src.Norm(0.45, 0.35); d > 0 {
				inflate += d
			}
		}
		res.PerNode[i].Gamma = clamp01(gamma * c.src.LogNormFactor(sigma))
		res.PerNode[i].To = plan.To * inflate * c.src.LogNormFactor(sigma)
		res.PerNode[i].Tu = plan.Tu * inflate * c.src.LogNormFactor(sigma)
	}
	return res, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// TrueModel returns the cluster's analytic ground-truth performance model
// for a job — what a perfect learner would converge to. Tests and the
// prediction-error experiments compare Cannikin's learned model against
// it; training systems must not read it.
func (c *Cluster) TrueModel(p gpu.JobProfile) (optperf.ClusterModel, error) {
	plan, err := simnet.PlanBuckets(c.Ring, p.ParamBytes, c.BucketBytes)
	if err != nil {
		return optperf.ClusterModel{}, err
	}
	m := optperf.ClusterModel{
		Nodes: make([]optperf.NodeModel, c.N()),
		Gamma: simnet.OverlapGamma(plan.NumBuckets),
		To:    plan.To,
		Tu:    plan.Tu,
	}
	for i, d := range c.Devices {
		cf := d.Coeffs(p)
		m.Nodes[i] = optperf.NodeModel{
			Q: cf.Q, S: cf.S, K: cf.K, M: cf.M,
			MaxBatch: d.MaxBatch(p),
		}
	}
	return m, nil
}

// MeasuredTime runs several steps at the given allocation and returns the
// average observed batch time — the "manually measured" reference of the
// Section 5.3 prediction-error experiment.
func (c *Cluster) MeasuredTime(p gpu.JobProfile, batches []int, steps int) (float64, error) {
	if steps <= 0 {
		return 0, errors.New("cluster: steps must be positive")
	}
	total := 0.0
	for s := 0; s < steps; s++ {
		res, err := c.Step(p, batches)
		if err != nil {
			return 0, err
		}
		total += res.Time
	}
	return total / float64(steps), nil
}
