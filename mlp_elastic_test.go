package cannikin

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// elasticMLPConfig is a small live run with one scheduled hot-join.
func elasticMLPConfig(seed uint64) MLPConfig {
	return MLPConfig{
		LocalBatches: []int{8, 8},
		Hidden:       []int{16},
		Dim:          8,
		Classes:      4,
		Samples:      256,
		Epochs:       3,
		Seed:         seed,
		Backend:      "live",
		Joins:        []JoinSpec{{Epoch: 1, Batch: 4}},
	}
}

// TestMLPElasticJoinDifferential drives the hot-join through the public
// API: the join record plus Resume/InitWeights/InitVelocity must be a
// complete recipe for reproducing the post-join trajectory bitwise.
func TestMLPElasticJoinDifferential(t *testing.T) {
	cfg := elasticMLPConfig(5)
	res, err := TrainMLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Joins) != 1 {
		t.Fatalf("joins = %+v, want one", res.Joins)
	}
	jr := res.Joins[0]
	if jr.Epoch != 1 || jr.Worker != 2 || len(jr.Batches) != 3 {
		t.Fatalf("join record %+v", jr)
	}
	if len(res.FinalVelocity) != len(res.FinalWeights) {
		t.Fatalf("final velocity %d elems, weights %d", len(res.FinalVelocity), len(res.FinalWeights))
	}

	fresh := cfg
	fresh.Joins = nil
	fresh.LocalBatches = jr.Batches
	fresh.InitWeights = jr.Checkpoint
	fresh.InitVelocity = jr.Velocity
	fresh.Epochs = cfg.Epochs - jr.Epoch
	fresh.Resume = "join-1"
	freshRes, err := TrainMLP(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(freshRes.FinalWeights) != len(res.FinalWeights) {
		t.Fatalf("weight dims differ: %d vs %d", len(freshRes.FinalWeights), len(res.FinalWeights))
	}
	for i := range res.FinalWeights {
		if res.FinalWeights[i] != freshRes.FinalWeights[i] {
			t.Fatalf("weight %d: %v != %v", i, res.FinalWeights[i], freshRes.FinalWeights[i])
		}
	}
}

// TestMLPAutoscaleGrows drives the autoscaler through the public API with
// default Eq. 8 pricing disabled in favor of growth bounded by MaxWorkers.
func TestMLPAutoscaleGrows(t *testing.T) {
	cfg := elasticMLPConfig(7)
	cfg.Joins = nil
	cfg.Autoscale = &AutoscaleConfig{
		MaxWorkers:    3,
		GrowThreshold: 0.01,
		JoinBatch:     4,
	}
	res, err := TrainMLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The default Eq. 8 pricing decides from the measured profile, so the
	// number of joins is hardware-dependent; membership must stay within
	// bounds and every join must be the autoscaler's.
	if res.Workers != 2 {
		t.Fatalf("initial workers %d", res.Workers)
	}
	if len(res.Joins) > 1 {
		t.Fatalf("autoscaler exceeded MaxWorkers: %+v", res.Joins)
	}
	for _, jr := range res.Joins {
		if !strings.Contains(jr.Reason, "autoscale grow") {
			t.Fatalf("join reason %q", jr.Reason)
		}
		if jr.Batch != 4 {
			t.Fatalf("join batch %d", jr.Batch)
		}
	}
}

// TestCheckpointFileRoundTrip pins the checkpoint codec's bitwise
// guarantee on the float64 values decimal formatting mangles: denormals,
// negative zero, and values needing all 17 significant digits.
func TestCheckpointFileRoundTrip(t *testing.T) {
	weights := []float64{
		0, math.Copysign(0, -1), 1.0 / 3.0, math.Pi,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.MaxFloat64, -math.MaxFloat64, 5e-324, 0.1 + 0.2,
	}
	velocity := make([]float64, len(weights))
	for i, x := range weights {
		velocity[i] = -x / 7
	}
	path := filepath.Join(t.TempDir(), "w.ckpt")
	if err := SaveCheckpoint(path, weights, velocity); err != nil {
		t.Fatal(err)
	}
	gotW, gotV, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range weights {
		if math.Float64bits(gotW[i]) != math.Float64bits(weights[i]) {
			t.Fatalf("weight %d: %x != %x", i, math.Float64bits(gotW[i]), math.Float64bits(weights[i]))
		}
		if math.Float64bits(gotV[i]) != math.Float64bits(velocity[i]) {
			t.Fatalf("velocity %d: %x != %x", i, math.Float64bits(gotV[i]), math.Float64bits(velocity[i]))
		}
	}

	// Velocity-less checkpoints (the post-eviction kind) round-trip to nil.
	if err := SaveCheckpoint(path, weights, nil); err != nil {
		t.Fatal(err)
	}
	if _, gotV, err = LoadCheckpoint(path); err != nil || gotV != nil {
		t.Fatalf("velocity-less checkpoint: %v, %v", gotV, err)
	}

	if err := SaveCheckpoint(path, weights, velocity[:3]); err == nil {
		t.Fatal("velocity dim mismatch accepted")
	}
	if _, _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

// TestMLPElasticValidation pins the public config contracts.
func TestMLPElasticValidation(t *testing.T) {
	cfg := elasticMLPConfig(1)
	cfg.Joins[0].Replan = "chaotic"
	if _, err := TrainMLP(cfg); err == nil {
		t.Fatal("unknown join replan accepted")
	}
	cfg = elasticMLPConfig(1)
	cfg.Joins[0].Epoch = 99
	if _, err := TrainMLP(cfg); err == nil {
		t.Fatal("out-of-range join epoch accepted")
	}
	cfg = elasticMLPConfig(1)
	cfg.Autoscale = &AutoscaleConfig{GrowThreshold: -1}
	if _, err := TrainMLP(cfg); err == nil {
		t.Fatal("negative autoscale threshold accepted")
	}
	if _, _, err := TrainMLPWorker(elasticMLPConfig(1), WorkerRingConfig{}); err == nil ||
		!strings.Contains(err.Error(), "worker mode") {
		t.Fatalf("worker-mode join err = %v", err)
	}
}
