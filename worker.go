package cannikin

import (
	"errors"
	"fmt"
	"net"
	"time"

	"cannikin/internal/allreduce"
	"cannikin/internal/runtime"
)

// WorkerRingConfig describes one process's attachment to a multi-process
// training ring over TCP.
type WorkerRingConfig struct {
	// Rank is this process's ring position; Peers lists every rank's
	// host:port in rank order (len(Peers) must equal the worker count of
	// the MLPConfig's LocalBatches).
	Rank  int
	Peers []string
	// Listen overrides the address this rank listens on (default:
	// Peers[Rank]) — useful when ranks bind 0.0.0.0 but advertise a
	// routable address.
	Listen string
	// BatchDelay is the send-side coalescing delay: 0 sends every ring hop
	// immediately, a positive value lingers that long to pack hops into one
	// network write, and a negative value selects adaptive auto-tuning.
	// Batching is framing-only; results are bitwise-identical at every
	// setting.
	BatchDelay time.Duration
	// DialTimeout bounds ring bring-up (default 10s).
	DialTimeout time.Duration
	// Guard runs every ring hop under per-hop deadlines so a stalled peer
	// fails the run with blame; without it, hops block on a silent peer but
	// still fail promptly when a peer's socket breaks.
	Guard bool
}

// RingStats reports a worker's wire activity: Batches counts network
// writes (flushes), MessagesSent the ring hops carried, so MsgsPerBatch
// is the achieved coalescing factor.
type RingStats struct {
	BytesSent, BytesReceived   int64
	MessagesSent, MessagesRecv int64
	Batches                    int64
	MsgsPerBatch               float64
}

// TrainMLPWorker runs this process's rank of a data-parallel MLP training
// job spanning several OS processes connected by a TCP ring. Every process
// must be started with the identical MLPConfig (same seed above all) and
// the identical Peers list; each then reproduces the dataset, the loader
// sequence, and the common initial weights deterministically, and the ring
// fixes the gradient summation order — so the trained weights are
// bitwise-identical on every rank, and bitwise-identical to a
// single-process TrainMLP run of the same config.
//
// Fault injection (MLPConfig.Fault) and growth-free recovery are
// unsupported in worker mode: a dead peer fails the run with a ring fault
// naming the suspect.
func TrainMLPWorker(cfg MLPConfig, ring WorkerRingConfig) (*MLPResult, *RingStats, error) {
	if cfg.Fault != nil {
		return nil, nil, errors.New("cannikin: fault injection is not supported in worker mode")
	}
	if len(cfg.Joins) > 0 || cfg.Autoscale != nil {
		return nil, nil, errors.New("cannikin: hot-join is not supported in worker mode: the coordinator runs one process generation per membership (resume the grown ring with InitWeights/InitVelocity and Resume instead)")
	}
	if cfg.Backend != "" {
		return nil, nil, fmt.Errorf("cannikin: worker mode selects its own backend (got %q)", cfg.Backend)
	}
	if err := cfg.defaults(); err != nil {
		return nil, nil, err
	}
	if len(ring.Peers) != len(cfg.LocalBatches) {
		return nil, nil, fmt.Errorf("cannikin: %d peers for %d workers", len(ring.Peers), len(cfg.LocalBatches))
	}
	rc, err := cfg.lowerRuntime()
	if err != nil {
		return nil, nil, err
	}
	rc.Backend = ""

	tcpCfg := allreduce.TCPConfig{
		Rank:        ring.Rank,
		Peers:       ring.Peers,
		BatchDelay:  ring.BatchDelay,
		DialTimeout: ring.DialTimeout,
	}
	if ring.Listen != "" {
		ln, err := net.Listen("tcp", ring.Listen)
		if err != nil {
			return nil, nil, fmt.Errorf("cannikin: rank %d listen %s: %w", ring.Rank, ring.Listen, err)
		}
		tcpCfg.Listener = ln
	}
	tr, err := allreduce.NewTCPTransport(tcpCfg)
	if err != nil {
		return nil, nil, err
	}
	defer tr.Close()
	r, err := allreduce.NewRingOver(tr)
	if err != nil {
		return nil, nil, err
	}

	res, err := runtime.TrainWorker(runtime.WorkerConfig{
		Config: *rc,
		Rank:   ring.Rank,
		Ring:   r,
		Guard:  ring.Guard,
	})
	if err != nil {
		return nil, nil, err
	}
	st := tr.Stats()
	return mlpResultOf(res), &RingStats{
		BytesSent:     st.BytesSent,
		BytesReceived: st.BytesReceived,
		MessagesSent:  st.MessagesSent,
		MessagesRecv:  st.MessagesRecv,
		Batches:       st.Batches,
		MsgsPerBatch:  st.MsgsPerBatch(),
	}, nil
}
