#!/bin/sh
# Load-test the multi-tenant training service: submit hundreds of
# concurrent short jobs against a seeded heterogeneous device pool under
# both allocator policies, record admission latency / queue depth /
# aggregate goodput, and fail unless every job settles, no goroutines
# leak, and the goodput allocator's granted goodput is at least the
# equal-split baseline priced at the same decision points.
#
# Usage: scripts/loadtest.sh [extra cannikin-loadtest flags...]
# Examples:
#   scripts/loadtest.sh                       # 200 synthetic jobs, 12 devices
#   scripts/loadtest.sh -jobs 500 -devices 24
#   scripts/loadtest.sh -real -jobs 40        # real MLP training jobs
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/cannikin-loadtest "$@"
