// Command benchcheck validates a BENCH_runtime.json produced by
// scripts/bench.sh: every benchmark configuration must be present once per
// GOMAXPROCS value in the sweep with positive timings, and the
// live-vs-sequential comparison is only enforced like-for-like — live must
// beat the sequential loop exactly when the host really has >= 4 cores AND
// the run used >= 4 cpus AND >= 4 workers. On fewer cores (or at cpu 1)
// the engines are near parity; those rows are recorded, not judged.
// Every entry carries a "transport" field so comparisons stay
// like-for-like across ring transports too: chan rows are never judged
// against tcp rows, and tcp rows must report their wire cost (bytes/hop)
// and coalescing factor (msgs/batch).
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// minMulticoreSpeedup is the enforced live-over-sequential advantage on a
// genuinely parallel configuration.
const minMulticoreSpeedup = 1.10

type benchFile struct {
	HostCores  int   `json:"host_cores"`
	GoMaxProcs []int `json:"gomaxprocs"`
	AllReduce  []struct {
		Transport string  `json:"transport"`
		Workers   int     `json:"workers"`
		Dim       int     `json:"dim"`
		CPU       int     `json:"cpu"`
		NsPerOp   float64 `json:"ns_per_op"`
	} `json:"allreduce"`
	TrainMLP []struct {
		Transport   string  `json:"transport"`
		Workers     int     `json:"workers"`
		CPU         int     `json:"cpu"`
		SimNsPerOp  float64 `json:"sim_ns_per_op"`
		LiveNsPerOp float64 `json:"live_ns_per_op"`
		LiveSpeedup float64 `json:"live_speedup"`
	} `json:"train_mlp"`
	RingTransport []struct {
		Transport    string  `json:"transport"`
		Workers      int     `json:"workers"`
		Dim          int     `json:"dim"`
		CPU          int     `json:"cpu"`
		NsPerOp      float64 `json:"ns_per_op"`
		BytesPerHop  float64 `json:"bytes_per_hop"`
		MsgsPerBatch float64 `json:"msgs_per_batch"`
	} `json:"ring_transport"`
	Kernels []struct {
		Name    string  `json:"name"`
		CPU     int     `json:"cpu"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"kernels"`
}

func main() {
	if err := check(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func check() error {
	if len(os.Args) != 2 {
		return fmt.Errorf("usage: benchcheck BENCH_runtime.json")
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		return err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return err
	}
	if f.HostCores < 1 {
		return fmt.Errorf("host_cores %d", f.HostCores)
	}
	if len(f.GoMaxProcs) == 0 {
		return fmt.Errorf("empty gomaxprocs sweep")
	}
	cpus := make(map[int]bool, len(f.GoMaxProcs))
	for _, c := range f.GoMaxProcs {
		if c < 1 {
			return fmt.Errorf("gomaxprocs value %d", c)
		}
		cpus[c] = true
	}
	nCPU := len(cpus)

	if want := 9 * nCPU; len(f.AllReduce) != want {
		return fmt.Errorf("want %d allreduce entries (3 worker counts x 3 dims x %d cpus), got %d",
			want, nCPU, len(f.AllReduce))
	}
	for _, r := range f.AllReduce {
		if r.Transport != "chan" {
			return fmt.Errorf("allreduce n=%d dim=%d: transport %q (the in-process helper always runs over chan)", r.Workers, r.Dim, r.Transport)
		}
		if !cpus[r.CPU] {
			return fmt.Errorf("allreduce n=%d dim=%d: cpu %d not in the sweep", r.Workers, r.Dim, r.CPU)
		}
		if r.NsPerOp <= 0 {
			return fmt.Errorf("allreduce n=%d dim=%d cpu=%d: non-positive ns/op", r.Workers, r.Dim, r.CPU)
		}
	}

	// The ring-transport sweep: the same reduce over each pluggable
	// transport, once per GOMAXPROCS value. The transport field keeps the
	// comparison like-for-like — a chan row is never judged against a tcp
	// row; tcp rows must additionally report wire cost and coalescing.
	ringTransports := []string{"chan", "tcp", "tcp-batch"}
	if want := len(ringTransports) * nCPU; len(f.RingTransport) != want {
		return fmt.Errorf("want %d ring-transport entries (%d transports x %d cpus), got %d",
			want, len(ringTransports), nCPU, len(f.RingTransport))
	}
	seen := make(map[string]bool, len(f.RingTransport))
	known := make(map[string]bool, len(ringTransports))
	for _, tr := range ringTransports {
		known[tr] = true
	}
	for _, r := range f.RingTransport {
		if !known[r.Transport] {
			return fmt.Errorf("ring-transport: unknown transport %q", r.Transport)
		}
		if !cpus[r.CPU] {
			return fmt.Errorf("ring-transport %s: cpu %d not in the sweep", r.Transport, r.CPU)
		}
		key := fmt.Sprintf("%s/%d", r.Transport, r.CPU)
		if seen[key] {
			return fmt.Errorf("ring-transport %s cpu=%d: duplicate entry", r.Transport, r.CPU)
		}
		seen[key] = true
		if r.NsPerOp <= 0 {
			return fmt.Errorf("ring-transport %s cpu=%d: non-positive ns/op", r.Transport, r.CPU)
		}
		if r.Transport != "chan" {
			if r.BytesPerHop <= 0 {
				return fmt.Errorf("ring-transport %s cpu=%d: non-positive bytes/hop", r.Transport, r.CPU)
			}
			if r.MsgsPerBatch < 1 {
				return fmt.Errorf("ring-transport %s cpu=%d: msgs/batch %.2f < 1", r.Transport, r.CPU, r.MsgsPerBatch)
			}
		}
	}

	if want := 4 * nCPU; len(f.TrainMLP) != want {
		return fmt.Errorf("want %d train-mlp entries (4 worker counts x %d cpus), got %d",
			want, nCPU, len(f.TrainMLP))
	}
	enforced := 0
	for _, r := range f.TrainMLP {
		if r.Transport != "chan" {
			return fmt.Errorf("train-mlp w=%d: transport %q (sim-vs-live rows compare in-process engines)", r.Workers, r.Transport)
		}
		if !cpus[r.CPU] {
			return fmt.Errorf("train-mlp w=%d: cpu %d not in the sweep", r.Workers, r.CPU)
		}
		if r.SimNsPerOp <= 0 || r.LiveNsPerOp <= 0 {
			return fmt.Errorf("train-mlp w=%d cpu=%d: non-positive timing", r.Workers, r.CPU)
		}
		if f.HostCores >= 4 && r.CPU >= 4 && r.Workers >= 4 {
			enforced++
			if r.LiveSpeedup <= minMulticoreSpeedup {
				return fmt.Errorf("train-mlp w=%d cpu=%d: live speedup %.3f <= %.2f on a %d-core host (sim %.0f ns/op, live %.0f ns/op)",
					r.Workers, r.CPU, r.LiveSpeedup, minMulticoreSpeedup, f.HostCores, r.SimNsPerOp, r.LiveNsPerOp)
			}
		}
	}

	if len(f.Kernels) == 0 {
		return fmt.Errorf("no kernel microbenchmark entries")
	}
	for _, r := range f.Kernels {
		if !cpus[r.CPU] {
			return fmt.Errorf("kernel %q: cpu %d not in the sweep", r.Name, r.CPU)
		}
		if r.NsPerOp <= 0 {
			return fmt.Errorf("kernel %q cpu=%d: non-positive ns/op", r.Name, r.CPU)
		}
	}

	if enforced > 0 {
		fmt.Printf("benchcheck: ok (%d cores; live beats sequential by >%.0f%% on all %d enforced rows)\n",
			f.HostCores, 100*(minMulticoreSpeedup-1), enforced)
	} else {
		fmt.Printf("benchcheck: ok (%d-core host: live-vs-sequential advantage recorded, not enforced)\n",
			f.HostCores)
	}
	return nil
}
