// Command benchcheck validates a BENCH_runtime.json produced by
// scripts/bench.sh.
//
//	benchcheck NEW.json [BASELINE.json]
//
// Structural checks: every benchmark configuration must be present once per
// GOMAXPROCS value in the sweep with positive timings, and every entry
// carries a "transport" field so comparisons stay like-for-like across ring
// transports: chan rows are never judged against tcp rows, and tcp rows
// must report their wire cost (bytes/hop) and coalescing factor
// (msgs/batch).
//
// Performance gates (all on the NEW file):
//
//  1. Like-for-like live gate: on every train-mlp row that ran without
//     GOMAXPROCS oversubscription (cpu <= host_cores) and with real
//     parallelism to exploit (workers >= 2), the live engine must not lose
//     to the sequential loop (live_speedup >= 1.0). The gate FAILS LOUDLY
//     if no row qualifies — a sweep that never exercises the comparison is
//     a broken sweep, not a passing one — and the number of rows actually
//     evaluated is printed so a vacuous pass can't hide. On a genuinely
//     multicore host (>= 4 cores, cpu >= 4, workers >= 4) the bar rises to
//     a strict 1.10x advantage.
//
//  2. Small-message scaling gate: the dim=1024 chan all-reduce must not get
//     slower as GOMAXPROCS grows (per worker count, ns/op monotone
//     non-increasing cpu 1 -> max, with a small noise tolerance). This
//     pins the fix for the goroutine fan-out regression on small payloads.
//
//  3. Coalescing gate: the adaptive-batching tcp transport (tcp-batch) must
//     stay within 1.10x of plain tcp at every cpu — batching may trade a
//     little latency for fewer writes but must never be a 2x loss.
//
// Trajectory gate (only when BASELINE.json is given): every NEW row whose
// (transport, workers, dim, cpu) key — or (name, cpu) for kernels — matches
// a BASELINE row must not be more than 15% slower than the baseline. Rows
// present only in one file are reported informationally, never failed, so
// sweeps can grow without breaking the gate.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

const (
	// minLikeForLikeSpeedup is the floor on every non-oversubscribed
	// multi-worker row: the live engine must at least match the
	// sequential loop.
	minLikeForLikeSpeedup = 1.0
	// minMulticoreSpeedup is the enforced live-over-sequential advantage
	// on a genuinely parallel configuration.
	minMulticoreSpeedup = 1.10
	// smallDim is the payload whose all-reduce cost must not grow with
	// GOMAXPROCS (the small-message fan-out regression).
	smallDim = 1024
	// smallDimTolerance absorbs scheduler noise in the monotonicity
	// check: ns/op at cpu k+1 may exceed ns/op at cpu k by at most 5%.
	smallDimTolerance = 1.05
	// maxBatchOverhead caps tcp-batch relative to plain tcp per cpu.
	maxBatchOverhead = 1.10
	// maxRegression is the trajectory bound: a matched row may be at most
	// 15% slower than the committed baseline.
	maxRegression = 1.15
)

type allReduceRow struct {
	Transport string  `json:"transport"`
	Workers   int     `json:"workers"`
	Dim       int     `json:"dim"`
	CPU       int     `json:"cpu"`
	NsPerOp   float64 `json:"ns_per_op"`
}

type trainMLPRow struct {
	Transport   string  `json:"transport"`
	Workers     int     `json:"workers"`
	CPU         int     `json:"cpu"`
	SimNsPerOp  float64 `json:"sim_ns_per_op"`
	LiveNsPerOp float64 `json:"live_ns_per_op"`
	LiveSpeedup float64 `json:"live_speedup"`
}

type ringTransportRow struct {
	Transport    string  `json:"transport"`
	Workers      int     `json:"workers"`
	Dim          int     `json:"dim"`
	CPU          int     `json:"cpu"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerHop  float64 `json:"bytes_per_hop"`
	MsgsPerBatch float64 `json:"msgs_per_batch"`
}

type kernelRow struct {
	Name    string  `json:"name"`
	CPU     int     `json:"cpu"`
	NsPerOp float64 `json:"ns_per_op"`
}

type benchFile struct {
	HostCores     int                `json:"host_cores"`
	GoMaxProcs    []int              `json:"gomaxprocs"`
	AllReduce     []allReduceRow     `json:"allreduce"`
	TrainMLP      []trainMLPRow      `json:"train_mlp"`
	RingTransport []ringTransportRow `json:"ring_transport"`
	Kernels       []kernelRow        `json:"kernels"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("usage: benchcheck NEW.json [BASELINE.json]")
	}
	f, err := load(args[0])
	if err != nil {
		return err
	}
	if err := check(f); err != nil {
		return err
	}
	if len(args) == 2 {
		base, err := load(args[1])
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if err := checkTrajectory(f, base); err != nil {
			return err
		}
	}
	return nil
}

func load(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func check(f *benchFile) error {
	if f.HostCores < 1 {
		return fmt.Errorf("host_cores %d", f.HostCores)
	}
	if len(f.GoMaxProcs) == 0 {
		return fmt.Errorf("empty gomaxprocs sweep")
	}
	cpus := make(map[int]bool, len(f.GoMaxProcs))
	for _, c := range f.GoMaxProcs {
		if c < 1 {
			return fmt.Errorf("gomaxprocs value %d", c)
		}
		cpus[c] = true
	}
	nCPU := len(cpus)

	if want := 9 * nCPU; len(f.AllReduce) != want {
		return fmt.Errorf("want %d allreduce entries (3 worker counts x 3 dims x %d cpus), got %d",
			want, nCPU, len(f.AllReduce))
	}
	for _, r := range f.AllReduce {
		if r.Transport != "chan" {
			return fmt.Errorf("allreduce n=%d dim=%d: transport %q (the in-process helper always runs over chan)", r.Workers, r.Dim, r.Transport)
		}
		if !cpus[r.CPU] {
			return fmt.Errorf("allreduce n=%d dim=%d: cpu %d not in the sweep", r.Workers, r.Dim, r.CPU)
		}
		if r.NsPerOp <= 0 {
			return fmt.Errorf("allreduce n=%d dim=%d cpu=%d: non-positive ns/op", r.Workers, r.Dim, r.CPU)
		}
	}
	if err := checkSmallDimScaling(f); err != nil {
		return err
	}

	// The ring-transport sweep: the same reduce over each pluggable
	// transport, once per GOMAXPROCS value. The transport field keeps the
	// comparison like-for-like — a chan row is never judged against a tcp
	// row; tcp rows must additionally report wire cost and coalescing.
	ringTransports := []string{"chan", "tcp", "tcp-batch"}
	if want := len(ringTransports) * nCPU; len(f.RingTransport) != want {
		return fmt.Errorf("want %d ring-transport entries (%d transports x %d cpus), got %d",
			want, len(ringTransports), nCPU, len(f.RingTransport))
	}
	seen := make(map[string]bool, len(f.RingTransport))
	known := make(map[string]bool, len(ringTransports))
	for _, tr := range ringTransports {
		known[tr] = true
	}
	tcpNs := make(map[int]float64, nCPU)
	batchNs := make(map[int]float64, nCPU)
	for _, r := range f.RingTransport {
		if !known[r.Transport] {
			return fmt.Errorf("ring-transport: unknown transport %q", r.Transport)
		}
		if !cpus[r.CPU] {
			return fmt.Errorf("ring-transport %s: cpu %d not in the sweep", r.Transport, r.CPU)
		}
		key := fmt.Sprintf("%s/%d", r.Transport, r.CPU)
		if seen[key] {
			return fmt.Errorf("ring-transport %s cpu=%d: duplicate entry", r.Transport, r.CPU)
		}
		seen[key] = true
		if r.NsPerOp <= 0 {
			return fmt.Errorf("ring-transport %s cpu=%d: non-positive ns/op", r.Transport, r.CPU)
		}
		if r.Transport != "chan" {
			if r.BytesPerHop <= 0 {
				return fmt.Errorf("ring-transport %s cpu=%d: non-positive bytes/hop", r.Transport, r.CPU)
			}
			if r.MsgsPerBatch < 1 {
				return fmt.Errorf("ring-transport %s cpu=%d: msgs/batch %.2f < 1", r.Transport, r.CPU, r.MsgsPerBatch)
			}
		}
		switch r.Transport {
		case "tcp":
			tcpNs[r.CPU] = r.NsPerOp
		case "tcp-batch":
			batchNs[r.CPU] = r.NsPerOp
		}
	}
	for _, cpu := range sortedKeys(tcpNs) {
		plain, batch := tcpNs[cpu], batchNs[cpu]
		if batch == 0 {
			continue // structural count check already failed above if so
		}
		if batch > plain*maxBatchOverhead {
			return fmt.Errorf("ring-transport cpu=%d: tcp-batch %.0f ns/op is %.2fx plain tcp %.0f ns/op (cap %.2fx) — adaptive batching over-lingers",
				cpu, batch, batch/plain, plain, maxBatchOverhead)
		}
	}

	if want := 4 * nCPU; len(f.TrainMLP) != want {
		return fmt.Errorf("want %d train-mlp entries (4 worker counts x %d cpus), got %d",
			want, nCPU, len(f.TrainMLP))
	}
	likeForLike, multicore := 0, 0
	for _, r := range f.TrainMLP {
		if r.Transport != "chan" {
			return fmt.Errorf("train-mlp w=%d: transport %q (sim-vs-live rows compare in-process engines)", r.Workers, r.Transport)
		}
		if !cpus[r.CPU] {
			return fmt.Errorf("train-mlp w=%d: cpu %d not in the sweep", r.Workers, r.CPU)
		}
		if r.SimNsPerOp <= 0 || r.LiveNsPerOp <= 0 {
			return fmt.Errorf("train-mlp w=%d cpu=%d: non-positive timing", r.Workers, r.CPU)
		}
		// Like-for-like: no GOMAXPROCS oversubscription and real
		// parallelism to exploit. Single-worker rows and rows run at
		// cpu > host_cores are recorded, not judged.
		if r.CPU <= f.HostCores && r.Workers >= 2 {
			likeForLike++
			if r.LiveSpeedup < minLikeForLikeSpeedup {
				return fmt.Errorf("train-mlp w=%d cpu=%d: live speedup %.4f < %.2f on a like-for-like row (sim %.0f ns/op, live %.0f ns/op)",
					r.Workers, r.CPU, r.LiveSpeedup, minLikeForLikeSpeedup, r.SimNsPerOp, r.LiveNsPerOp)
			}
		}
		if f.HostCores >= 4 && r.CPU >= 4 && r.Workers >= 4 {
			multicore++
			if r.LiveSpeedup <= minMulticoreSpeedup {
				return fmt.Errorf("train-mlp w=%d cpu=%d: live speedup %.3f <= %.2f on a %d-core host (sim %.0f ns/op, live %.0f ns/op)",
					r.Workers, r.CPU, r.LiveSpeedup, minMulticoreSpeedup, f.HostCores, r.SimNsPerOp, r.LiveNsPerOp)
			}
		}
	}
	if likeForLike == 0 {
		return fmt.Errorf("live-vs-sequential gate was vacuous: no train-mlp row has cpu <= host_cores (%d) and workers >= 2 — the sweep no longer exercises a like-for-like comparison", f.HostCores)
	}

	if len(f.Kernels) == 0 {
		return fmt.Errorf("no kernel microbenchmark entries")
	}
	for _, r := range f.Kernels {
		if !cpus[r.CPU] {
			return fmt.Errorf("kernel %q: cpu %d not in the sweep", r.Name, r.CPU)
		}
		if r.NsPerOp <= 0 {
			return fmt.Errorf("kernel %q cpu=%d: non-positive ns/op", r.Name, r.CPU)
		}
	}

	fmt.Printf("benchcheck: ok (%d cores; live >= sequential on %d/%d like-for-like rows", f.HostCores, likeForLike, len(f.TrainMLP))
	if multicore > 0 {
		fmt.Printf("; live beats sequential by >%.0f%% on all %d multicore rows", 100*(minMulticoreSpeedup-1), multicore)
	}
	fmt.Printf("; dim=%d all-reduce non-increasing in cpu; tcp-batch <= %.2fx tcp)\n", smallDim, maxBatchOverhead)
	return nil
}

// checkSmallDimScaling enforces that the small-payload all-reduce does not
// get slower with more GOMAXPROCS: for each worker count, the dim=1024 chan
// rows must be monotone non-increasing in cpu (modulo a 5% noise band).
func checkSmallDimScaling(f *benchFile) error {
	byWorkers := map[int]map[int]float64{}
	for _, r := range f.AllReduce {
		if r.Dim != smallDim {
			continue
		}
		if byWorkers[r.Workers] == nil {
			byWorkers[r.Workers] = map[int]float64{}
		}
		byWorkers[r.Workers][r.CPU] = r.NsPerOp
	}
	if len(byWorkers) == 0 {
		return fmt.Errorf("small-message scaling gate was vacuous: no dim=%d allreduce rows in the sweep", smallDim)
	}
	for _, n := range sortedKeys(byWorkers) {
		rows := byWorkers[n]
		cpus := sortedKeys(rows)
		for i := 1; i < len(cpus); i++ {
			prev, cur := rows[cpus[i-1]], rows[cpus[i]]
			if cur > prev*smallDimTolerance {
				return fmt.Errorf("allreduce n=%d dim=%d: %.0f ns/op at cpu=%d vs %.0f ns/op at cpu=%d — small-message cost grows with GOMAXPROCS (tolerance %.2fx)",
					n, smallDim, cur, cpus[i], prev, cpus[i-1], smallDimTolerance)
			}
		}
	}
	return nil
}

// checkTrajectory compares the new file against a committed baseline: any
// row whose key matches a baseline row must not be more than maxRegression
// slower. Keys present in only one file are informational.
func checkTrajectory(f, base *benchFile) error {
	type pair struct{ kind, key string }
	oldNs := map[pair]float64{}
	add := func(kind, key string, ns float64) {
		oldNs[pair{kind, key}] = ns
	}
	for _, r := range base.AllReduce {
		add("allreduce", fmt.Sprintf("%s/w%d/dim%d/cpu%d", r.Transport, r.Workers, r.Dim, r.CPU), r.NsPerOp)
	}
	for _, r := range base.RingTransport {
		add("ring-transport", fmt.Sprintf("%s/w%d/dim%d/cpu%d", r.Transport, r.Workers, r.Dim, r.CPU), r.NsPerOp)
	}
	for _, r := range base.TrainMLP {
		add("train-mlp/sim", fmt.Sprintf("%s/w%d/cpu%d", r.Transport, r.Workers, r.CPU), r.SimNsPerOp)
		add("train-mlp/live", fmt.Sprintf("%s/w%d/cpu%d", r.Transport, r.Workers, r.CPU), r.LiveNsPerOp)
	}
	for _, r := range base.Kernels {
		add("kernel", fmt.Sprintf("%s/cpu%d", r.Name, r.CPU), r.NsPerOp)
	}

	matched, fresh := 0, 0
	judge := func(kind, key string, ns float64) error {
		old, ok := oldNs[pair{kind, key}]
		if !ok {
			fresh++
			return nil
		}
		matched++
		delete(oldNs, pair{kind, key})
		if ns > old*maxRegression {
			return fmt.Errorf("trajectory: %s %s regressed %.0f -> %.0f ns/op (%.2fx, cap %.2fx vs baseline)",
				kind, key, old, ns, ns/old, maxRegression)
		}
		return nil
	}
	for _, r := range f.AllReduce {
		if err := judge("allreduce", fmt.Sprintf("%s/w%d/dim%d/cpu%d", r.Transport, r.Workers, r.Dim, r.CPU), r.NsPerOp); err != nil {
			return err
		}
	}
	for _, r := range f.RingTransport {
		if err := judge("ring-transport", fmt.Sprintf("%s/w%d/dim%d/cpu%d", r.Transport, r.Workers, r.Dim, r.CPU), r.NsPerOp); err != nil {
			return err
		}
	}
	for _, r := range f.TrainMLP {
		key := fmt.Sprintf("%s/w%d/cpu%d", r.Transport, r.Workers, r.CPU)
		if err := judge("train-mlp/sim", key, r.SimNsPerOp); err != nil {
			return err
		}
		if err := judge("train-mlp/live", key, r.LiveNsPerOp); err != nil {
			return err
		}
	}
	for _, r := range f.Kernels {
		if err := judge("kernel", fmt.Sprintf("%s/cpu%d", r.Name, r.CPU), r.NsPerOp); err != nil {
			return err
		}
	}
	dropped := len(oldNs)
	fmt.Printf("benchcheck: trajectory ok (%d rows within %.0f%% of baseline; %d new, %d dropped)\n",
		matched, 100*(maxRegression-1), fresh, dropped)
	return nil
}

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
