// Command benchcheck validates a BENCH_runtime.json produced by
// scripts/bench.sh.
//
//	benchcheck [-only allreduce] NEW.json [BASELINE.json]
//
// Structural checks: every benchmark configuration must be present once per
// GOMAXPROCS value in the sweep with positive timings, and every entry
// carries "transport" and "algorithm" fields so comparisons stay
// like-for-like: chan rows are never judged against tcp rows, a ring row is
// never judged against a halving-doubling row, and tcp rows must report
// their wire cost (bytes/hop) and coalescing factor (msgs/batch). Rows
// written before the algorithm field existed mean ring (the collective the
// old sweeps measured), so old baselines keep gating new files.
//
// Performance gates (all on the NEW file):
//
//  1. Like-for-like live gate: on every train-mlp row that ran without
//     GOMAXPROCS oversubscription (cpu <= host_cores) and with real
//     parallelism to exploit (workers >= 2), the live engine must not lose
//     to the sequential loop (live_speedup >= 1.0). The gate FAILS LOUDLY
//     if no row qualifies — a sweep that never exercises the comparison is
//     a broken sweep, not a passing one — and the number of rows actually
//     evaluated is printed so a vacuous pass can't hide. On a genuinely
//     multicore host (>= 4 cores, cpu >= 4, workers >= 4) the bar rises to
//     a strict 1.10x advantage.
//
//  2. Small-message scaling gate: the dim=1024 chan all-reduce must not get
//     slower as GOMAXPROCS grows, for every (workers, algorithm) pair
//     (ns/op monotone non-increasing cpu 1 -> max, with a small noise
//     tolerance). Every algorithm's small-payload form runs inline on the
//     calling goroutine, so none may pay a goroutine fan-out tax.
//
//  3. Large-payload scaling gate: at dim=65536 and dim=1048576 the
//     pipeline and auto rows must likewise be monotone non-increasing in
//     cpu at every worker count. The chunk-pipelined ring's cache-blocked
//     schedule is GOMAXPROCS-independent by construction — this pins the
//     fix for the large-payload regression the plain concurrent ring shows
//     on few-core hosts (ring rows are exempt: they document exactly that
//     regression). The tolerance is wider than the small-dim gate's
//     because multi-ms samples on a shared host carry more jitter.
//
//  4. Auto-speedup gate: the selector's auto choice at (chan, workers=8,
//     dim=1024) must be at least 2x faster than the ring all-reduce at the
//     same configuration — measured against the committed baseline's ring
//     rows when a baseline is given, else against the new file's own. This
//     is the headline payoff of the algorithm-adaptive engine: picking
//     halving-doubling on latency-bound payloads must halve the cost, not
//     shave it.
//
//  5. Coalescing gate: the adaptive-batching tcp transport (tcp-batch) must
//     stay within 1.10x of plain tcp at every cpu — batching may trade a
//     little latency for fewer writes but must never be a 2x loss.
//
//  6. Join-latency gate: on every join_latency row, the run that hot-joins
//     a worker at an epoch boundary must cost at most 1.25x the identical
//     training arithmetic performed as two checkpoint-handed static runs —
//     the membership machinery (probe, bitwise checkpoint verification,
//     ring rebuild, Eq. 9 rescale) must stay a few percent of an epoch,
//     never a second training run.
//
// Trajectory gate (only when BASELINE.json is given): every NEW row whose
// (transport, algorithm, workers, dim, cpu) key — or (name, cpu) for
// kernels — matches a BASELINE row must not be more than 15% slower than
// the baseline. Rows present only in one file are reported
// informationally, never failed, so sweeps can grow without breaking the
// gate.
//
// With -only allreduce, only the allreduce and ring-transport sections are
// checked (gates 2-5 and their slice of the trajectory); the train and
// kernel sections may be absent. scripts/bench.sh uses this for the
// BENCH_ONLY=allreduce quick loop.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

const (
	// minLikeForLikeSpeedup is the floor on every non-oversubscribed
	// multi-worker row: the live engine must at least match the
	// sequential loop.
	minLikeForLikeSpeedup = 1.0
	// minMulticoreSpeedup is the enforced live-over-sequential advantage
	// on a genuinely parallel configuration.
	minMulticoreSpeedup = 1.10
	// smallDim is the payload whose all-reduce cost must not grow with
	// GOMAXPROCS (the small-message fan-out regression).
	smallDim = 1024
	// smallDimTolerance absorbs scheduler noise in the monotonicity
	// check: ns/op at cpu k+1 may exceed ns/op at cpu k by at most 10%.
	// The band was 1.05 when the gate covered 3 ring rows; with four
	// algorithms it judges 24 adjacent-cpu pairs per sweep, and on ~1 us
	// inline ops the bench host's slow phases alone move the min 5-10%,
	// so 1.05 flaked on noise. The fan-out pathology this gate exists
	// for grew >= 1.88x per step — 1.10 still catches it loudly.
	smallDimTolerance = 1.10
	// largeDimTolerance is the wider band for the multi-ms large-payload
	// rows: their min-of-short-runs estimate moves ~10% run to run on a
	// shared host (the bench host drifts through multi-minute slow
	// phases), so a 1.10 band flakes on noise alone. 1.15 still catches
	// the concurrent-path pathology this gate exists for — the pre-
	// pipeline rows grew 1.16-1.73x per cpu step at these dims.
	largeDimTolerance = 1.15
	// autoGateWorkers pins where the auto-speedup gate is measured: the
	// widest ring in the sweep, where the latency gap between 2(n-1) ring
	// hops and 2log2(n) hd rounds is largest.
	autoGateWorkers = 8
	// minAutoSpeedup is the required ring-over-auto advantage at the gate
	// configuration.
	minAutoSpeedup = 2.0
	// maxBatchOverhead caps tcp-batch relative to plain tcp per cpu.
	maxBatchOverhead = 1.10
	// maxRegression is the trajectory bound: a matched row may be at most
	// 15% slower than the committed baseline.
	maxRegression = 1.15
	// maxJoinOverhead caps the elasticity tax: a run that hot-joins a
	// worker at an epoch boundary (probe passes, bitwise checkpoint
	// verification, ring rebuild, Eq. 9 rescale) may cost at most 25% more
	// than the identical training arithmetic run as two checkpoint-handed
	// static runs. The machinery itself is a few percent of an epoch; the
	// band is wide because both legs are multi-hundred-ms runs whose
	// min-of-reps estimates each move ~10% on a shared host.
	maxJoinOverhead = 1.25
)

// largeDims lists the payloads the large-payload scaling gate covers.
var largeDims = []int{65536, 1048576}

type allReduceRow struct {
	Transport string  `json:"transport"`
	Algorithm string  `json:"algorithm"`
	Workers   int     `json:"workers"`
	Dim       int     `json:"dim"`
	CPU       int     `json:"cpu"`
	NsPerOp   float64 `json:"ns_per_op"`
}

type trainMLPRow struct {
	Transport   string  `json:"transport"`
	Workers     int     `json:"workers"`
	CPU         int     `json:"cpu"`
	SimNsPerOp  float64 `json:"sim_ns_per_op"`
	LiveNsPerOp float64 `json:"live_ns_per_op"`
	LiveSpeedup float64 `json:"live_speedup"`
}

type ringTransportRow struct {
	Transport    string  `json:"transport"`
	Algorithm    string  `json:"algorithm"`
	Workers      int     `json:"workers"`
	Dim          int     `json:"dim"`
	CPU          int     `json:"cpu"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerHop  float64 `json:"bytes_per_hop"`
	MsgsPerBatch float64 `json:"msgs_per_batch"`
}

type joinLatencyRow struct {
	Transport     string  `json:"transport"`
	WorkersFrom   int     `json:"workers_from"`
	WorkersTo     int     `json:"workers_to"`
	CPU           int     `json:"cpu"`
	JoinNsPerOp   float64 `json:"join_ns_per_op"`
	SplitNsPerOp  float64 `json:"split_ns_per_op"`
	JoinOverSplit float64 `json:"join_over_split"`
}

type kernelRow struct {
	Name    string  `json:"name"`
	CPU     int     `json:"cpu"`
	NsPerOp float64 `json:"ns_per_op"`
}

type benchFile struct {
	HostCores     int                `json:"host_cores"`
	GoMaxProcs    []int              `json:"gomaxprocs"`
	AllReduce     []allReduceRow     `json:"allreduce"`
	TrainMLP      []trainMLPRow      `json:"train_mlp"`
	JoinLatency   []joinLatencyRow   `json:"join_latency"`
	RingTransport []ringTransportRow `json:"ring_transport"`
	Kernels       []kernelRow        `json:"kernels"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	only := ""
	if len(args) >= 2 && args[0] == "-only" {
		only = args[1]
		args = args[2:]
	}
	if only != "" && only != "allreduce" {
		return fmt.Errorf("unknown -only section %q (want allreduce)", only)
	}
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("usage: benchcheck [-only allreduce] NEW.json [BASELINE.json]")
	}
	f, err := load(args[0])
	if err != nil {
		return err
	}
	var base *benchFile
	if len(args) == 2 {
		if base, err = load(args[1]); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	if err := check(f, base, only); err != nil {
		return err
	}
	if base != nil {
		if err := checkTrajectory(f, base); err != nil {
			return err
		}
	}
	return nil
}

func load(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// Rows written before the algorithm field existed are ring rows: the
	// old sweeps measured exactly the ring collective, so normalizing here
	// keeps old baselines gating new files key-for-key.
	for i := range f.AllReduce {
		if f.AllReduce[i].Algorithm == "" {
			f.AllReduce[i].Algorithm = "ring"
		}
	}
	for i := range f.RingTransport {
		if f.RingTransport[i].Algorithm == "" {
			f.RingTransport[i].Algorithm = "ring"
		}
	}
	return &f, nil
}

func check(f, base *benchFile, only string) error {
	if f.HostCores < 1 {
		return fmt.Errorf("host_cores %d", f.HostCores)
	}
	if len(f.GoMaxProcs) == 0 {
		return fmt.Errorf("empty gomaxprocs sweep")
	}
	cpus := make(map[int]bool, len(f.GoMaxProcs))
	for _, c := range f.GoMaxProcs {
		if c < 1 {
			return fmt.Errorf("gomaxprocs value %d", c)
		}
		cpus[c] = true
	}
	nCPU := len(cpus)

	// The allreduce sweep: 3 worker counts; every algorithm (ring, hd,
	// pipeline, auto) at the latency-bound dim=1024, and ring/pipeline/auto
	// at the two bandwidth-bound dims (hd's large-payload path is not a
	// contender there and the harness skips it).
	if want := 3 * (4 + 2*3) * nCPU; len(f.AllReduce) != want {
		return fmt.Errorf("want %d allreduce entries (3 worker counts x 10 dim/algorithm pairs x %d cpus), got %d",
			want, nCPU, len(f.AllReduce))
	}
	for _, r := range f.AllReduce {
		if r.Transport != "chan" {
			return fmt.Errorf("allreduce n=%d dim=%d: transport %q (the in-process helper always runs over chan)", r.Workers, r.Dim, r.Transport)
		}
		switch r.Algorithm {
		case "ring", "hd", "pipeline", "auto":
		default:
			return fmt.Errorf("allreduce n=%d dim=%d: unknown algorithm %q", r.Workers, r.Dim, r.Algorithm)
		}
		if !cpus[r.CPU] {
			return fmt.Errorf("allreduce n=%d dim=%d/%s: cpu %d not in the sweep", r.Workers, r.Dim, r.Algorithm, r.CPU)
		}
		if r.NsPerOp <= 0 {
			return fmt.Errorf("allreduce n=%d dim=%d/%s cpu=%d: non-positive ns/op", r.Workers, r.Dim, r.Algorithm, r.CPU)
		}
	}
	if err := checkDimScaling(f, smallDim, nil, smallDimTolerance); err != nil {
		return err
	}
	for _, dim := range largeDims {
		if err := checkDimScaling(f, dim, map[string]bool{"pipeline": true, "auto": true}, largeDimTolerance); err != nil {
			return err
		}
	}
	if err := checkAutoSpeedup(f, base); err != nil {
		return err
	}

	// The ring-transport sweep: the same reduce over each pluggable
	// transport (the chan ring additionally under each collective
	// algorithm), once per GOMAXPROCS value. The (transport, algorithm)
	// pair keeps the comparison like-for-like — a chan row is never judged
	// against a tcp row, a ring row never against an hd row; tcp rows must
	// additionally report wire cost and coalescing.
	ringConfigs := [][2]string{
		{"chan", "ring"}, {"chan", "hd"}, {"chan", "pipeline"},
		{"tcp", "ring"}, {"tcp-batch", "ring"},
	}
	if want := len(ringConfigs) * nCPU; len(f.RingTransport) != want {
		return fmt.Errorf("want %d ring-transport entries (%d transport/algorithm pairs x %d cpus), got %d",
			want, len(ringConfigs), nCPU, len(f.RingTransport))
	}
	seen := make(map[string]bool, len(f.RingTransport))
	known := make(map[[2]string]bool, len(ringConfigs))
	for _, tr := range ringConfigs {
		known[tr] = true
	}
	tcpNs := make(map[int]float64, nCPU)
	batchNs := make(map[int]float64, nCPU)
	for _, r := range f.RingTransport {
		if !known[[2]string{r.Transport, r.Algorithm}] {
			return fmt.Errorf("ring-transport: unknown transport/algorithm %q/%q", r.Transport, r.Algorithm)
		}
		if !cpus[r.CPU] {
			return fmt.Errorf("ring-transport %s/%s: cpu %d not in the sweep", r.Transport, r.Algorithm, r.CPU)
		}
		key := fmt.Sprintf("%s/%s/%d", r.Transport, r.Algorithm, r.CPU)
		if seen[key] {
			return fmt.Errorf("ring-transport %s/%s cpu=%d: duplicate entry", r.Transport, r.Algorithm, r.CPU)
		}
		seen[key] = true
		if r.NsPerOp <= 0 {
			return fmt.Errorf("ring-transport %s/%s cpu=%d: non-positive ns/op", r.Transport, r.Algorithm, r.CPU)
		}
		if strings.HasPrefix(r.Transport, "tcp") {
			if r.BytesPerHop <= 0 {
				return fmt.Errorf("ring-transport %s cpu=%d: non-positive bytes/hop", r.Transport, r.CPU)
			}
			if r.MsgsPerBatch < 1 {
				return fmt.Errorf("ring-transport %s cpu=%d: msgs/batch %.2f < 1", r.Transport, r.CPU, r.MsgsPerBatch)
			}
		}
		switch r.Transport {
		case "tcp":
			tcpNs[r.CPU] = r.NsPerOp
		case "tcp-batch":
			batchNs[r.CPU] = r.NsPerOp
		}
	}
	for _, cpu := range sortedKeys(tcpNs) {
		plain, batch := tcpNs[cpu], batchNs[cpu]
		if batch == 0 {
			continue // structural count check already failed above if so
		}
		if batch > plain*maxBatchOverhead {
			return fmt.Errorf("ring-transport cpu=%d: tcp-batch %.0f ns/op is %.2fx plain tcp %.0f ns/op (cap %.2fx) — adaptive batching over-lingers",
				cpu, batch, batch/plain, plain, maxBatchOverhead)
		}
	}

	if only == "allreduce" {
		fmt.Printf("benchcheck: allreduce sections ok (%d cores; non-increasing in cpu for every algorithm at dim=%d and pipeline/auto at large dims; auto >= %.0fx ring at w%d/dim%d; tcp-batch <= %.2fx tcp)\n",
			f.HostCores, smallDim, minAutoSpeedup, autoGateWorkers, smallDim, maxBatchOverhead)
		return nil
	}

	if want := 4 * nCPU; len(f.TrainMLP) != want {
		return fmt.Errorf("want %d train-mlp entries (4 worker counts x %d cpus), got %d",
			want, nCPU, len(f.TrainMLP))
	}
	likeForLike, multicore := 0, 0
	for _, r := range f.TrainMLP {
		if r.Transport != "chan" {
			return fmt.Errorf("train-mlp w=%d: transport %q (sim-vs-live rows compare in-process engines)", r.Workers, r.Transport)
		}
		if !cpus[r.CPU] {
			return fmt.Errorf("train-mlp w=%d: cpu %d not in the sweep", r.Workers, r.CPU)
		}
		if r.SimNsPerOp <= 0 || r.LiveNsPerOp <= 0 {
			return fmt.Errorf("train-mlp w=%d cpu=%d: non-positive timing", r.Workers, r.CPU)
		}
		// Like-for-like: no GOMAXPROCS oversubscription and real
		// parallelism to exploit. Single-worker rows and rows run at
		// cpu > host_cores are recorded, not judged.
		if r.CPU <= f.HostCores && r.Workers >= 2 {
			likeForLike++
			if r.LiveSpeedup < minLikeForLikeSpeedup {
				return fmt.Errorf("train-mlp w=%d cpu=%d: live speedup %.4f < %.2f on a like-for-like row (sim %.0f ns/op, live %.0f ns/op)",
					r.Workers, r.CPU, r.LiveSpeedup, minLikeForLikeSpeedup, r.SimNsPerOp, r.LiveNsPerOp)
			}
		}
		if f.HostCores >= 4 && r.CPU >= 4 && r.Workers >= 4 {
			multicore++
			if r.LiveSpeedup <= minMulticoreSpeedup {
				return fmt.Errorf("train-mlp w=%d cpu=%d: live speedup %.3f <= %.2f on a %d-core host (sim %.0f ns/op, live %.0f ns/op)",
					r.Workers, r.CPU, r.LiveSpeedup, minMulticoreSpeedup, f.HostCores, r.SimNsPerOp, r.LiveNsPerOp)
			}
		}
	}
	if likeForLike == 0 {
		return fmt.Errorf("live-vs-sequential gate was vacuous: no train-mlp row has cpu <= host_cores (%d) and workers >= 2 — the sweep no longer exercises a like-for-like comparison", f.HostCores)
	}

	// The join-latency sweep: two membership transitions (2->3 and 4->5
	// workers), once per GOMAXPROCS value, each row carrying both legs.
	if want := 2 * nCPU; len(f.JoinLatency) != want {
		return fmt.Errorf("want %d join-latency entries (2 membership transitions x %d cpus), got %d",
			want, nCPU, len(f.JoinLatency))
	}
	for _, r := range f.JoinLatency {
		if r.Transport != "chan" {
			return fmt.Errorf("join-latency w%d->%d: transport %q (the elastic bench runs the in-process engines)", r.WorkersFrom, r.WorkersTo, r.Transport)
		}
		if r.WorkersTo != r.WorkersFrom+1 {
			return fmt.Errorf("join-latency w%d->%d: a hot-join admits exactly one worker", r.WorkersFrom, r.WorkersTo)
		}
		if !cpus[r.CPU] {
			return fmt.Errorf("join-latency w%d->%d: cpu %d not in the sweep", r.WorkersFrom, r.WorkersTo, r.CPU)
		}
		if r.JoinNsPerOp <= 0 || r.SplitNsPerOp <= 0 {
			return fmt.Errorf("join-latency w%d->%d cpu=%d: non-positive timing", r.WorkersFrom, r.WorkersTo, r.CPU)
		}
		if r.JoinNsPerOp > r.SplitNsPerOp*maxJoinOverhead {
			return fmt.Errorf("join-latency w%d->%d cpu=%d: hot-join %.0f ns/op is %.2fx the checkpoint-handed split run %.0f ns/op (cap %.2fx) — the membership machinery costs a training run",
				r.WorkersFrom, r.WorkersTo, r.CPU, r.JoinNsPerOp, r.JoinNsPerOp/r.SplitNsPerOp, r.SplitNsPerOp, maxJoinOverhead)
		}
	}

	if len(f.Kernels) == 0 {
		return fmt.Errorf("no kernel microbenchmark entries")
	}
	for _, r := range f.Kernels {
		if !cpus[r.CPU] {
			return fmt.Errorf("kernel %q: cpu %d not in the sweep", r.Name, r.CPU)
		}
		if r.NsPerOp <= 0 {
			return fmt.Errorf("kernel %q cpu=%d: non-positive ns/op", r.Name, r.CPU)
		}
	}

	fmt.Printf("benchcheck: ok (%d cores; live >= sequential on %d/%d like-for-like rows", f.HostCores, likeForLike, len(f.TrainMLP))
	if multicore > 0 {
		fmt.Printf("; live beats sequential by >%.0f%% on all %d multicore rows", 100*(minMulticoreSpeedup-1), multicore)
	}
	fmt.Printf("; all-reduce non-increasing in cpu (every algorithm at dim=%d, pipeline/auto at large dims); auto >= %.0fx ring at w%d/dim%d; tcp-batch <= %.2fx tcp; hot-join <= %.2fx its split run on %d rows)\n",
		smallDim, minAutoSpeedup, autoGateWorkers, smallDim, maxBatchOverhead, maxJoinOverhead, len(f.JoinLatency))
	return nil
}

// checkDimScaling enforces that the chan all-reduce at one payload size
// does not get slower with more GOMAXPROCS: for each worker count and each
// gated algorithm, the rows must be monotone non-increasing in cpu (modulo
// the given noise band). algs nil gates every algorithm present at the
// dim; otherwise only the listed ones (the large dims exempt ring, whose
// concurrent path documents exactly the regression the pipeline fixes).
func checkDimScaling(f *benchFile, dim int, algs map[string]bool, tolerance float64) error {
	byConfig := map[string]map[int]float64{}
	for _, r := range f.AllReduce {
		if r.Dim != dim {
			continue
		}
		if algs != nil && !algs[r.Algorithm] {
			continue
		}
		key := fmt.Sprintf("n%d/%s", r.Workers, r.Algorithm)
		if byConfig[key] == nil {
			byConfig[key] = map[int]float64{}
		}
		byConfig[key][r.CPU] = r.NsPerOp
	}
	if len(byConfig) == 0 {
		return fmt.Errorf("scaling gate was vacuous: no gated dim=%d allreduce rows in the sweep", dim)
	}
	keys := make([]string, 0, len(byConfig))
	for k := range byConfig {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rows := byConfig[k]
		cpus := sortedKeys(rows)
		for i := 1; i < len(cpus); i++ {
			prev, cur := rows[cpus[i-1]], rows[cpus[i]]
			if cur > prev*tolerance {
				return fmt.Errorf("allreduce %s dim=%d: %.0f ns/op at cpu=%d vs %.0f ns/op at cpu=%d — cost grows with GOMAXPROCS (tolerance %.2fx)",
					k, dim, cur, cpus[i], prev, cpus[i-1], tolerance)
			}
		}
	}
	return nil
}

// checkAutoSpeedup enforces the engine's headline: at the latency-bound
// gate configuration (chan, autoGateWorkers, smallDim) the selector's auto
// rows must beat the ring rows by at least minAutoSpeedup at every cpu.
// The ring reference comes from the committed baseline when one is given
// — "2x faster than the rows we shipped" — else from the new file itself.
func checkAutoSpeedup(f, base *benchFile) error {
	src, from := f, "in-file"
	if base != nil {
		src, from = base, "baseline"
	}
	ringNs := map[int]float64{}
	for _, r := range src.AllReduce {
		if r.Algorithm == "ring" && r.Workers == autoGateWorkers && r.Dim == smallDim {
			ringNs[r.CPU] = r.NsPerOp
		}
	}
	checked := 0
	for _, r := range f.AllReduce {
		if r.Algorithm != "auto" || r.Workers != autoGateWorkers || r.Dim != smallDim {
			continue
		}
		ring, ok := ringNs[r.CPU]
		if !ok {
			continue
		}
		checked++
		if r.NsPerOp*minAutoSpeedup > ring {
			return fmt.Errorf("allreduce n=%d dim=%d cpu=%d: auto %.0f ns/op is only %.2fx faster than %s ring %.0f ns/op (need >= %.1fx) — the selector's pick does not pay for itself",
				autoGateWorkers, smallDim, r.CPU, r.NsPerOp, ring/r.NsPerOp, from, ring, minAutoSpeedup)
		}
	}
	if checked == 0 {
		return fmt.Errorf("auto-speedup gate was vacuous: no auto/ring pair at n=%d dim=%d (%s ring rows) — the sweep no longer exercises the selector's headline win",
			autoGateWorkers, smallDim, from)
	}
	return nil
}

// checkTrajectory compares the new file against a committed baseline: any
// row whose key matches a baseline row must not be more than maxRegression
// slower. Keys present in only one file are informational.
func checkTrajectory(f, base *benchFile) error {
	type pair struct{ kind, key string }
	oldNs := map[pair]float64{}
	add := func(kind, key string, ns float64) {
		oldNs[pair{kind, key}] = ns
	}
	for _, r := range base.AllReduce {
		add("allreduce", fmt.Sprintf("%s/%s/w%d/dim%d/cpu%d", r.Transport, r.Algorithm, r.Workers, r.Dim, r.CPU), r.NsPerOp)
	}
	for _, r := range base.RingTransport {
		add("ring-transport", fmt.Sprintf("%s/%s/w%d/dim%d/cpu%d", r.Transport, r.Algorithm, r.Workers, r.Dim, r.CPU), r.NsPerOp)
	}
	for _, r := range base.TrainMLP {
		add("train-mlp/sim", fmt.Sprintf("%s/w%d/cpu%d", r.Transport, r.Workers, r.CPU), r.SimNsPerOp)
		add("train-mlp/live", fmt.Sprintf("%s/w%d/cpu%d", r.Transport, r.Workers, r.CPU), r.LiveNsPerOp)
	}
	for _, r := range base.JoinLatency {
		key := fmt.Sprintf("%s/w%dto%d/cpu%d", r.Transport, r.WorkersFrom, r.WorkersTo, r.CPU)
		add("join-latency/join", key, r.JoinNsPerOp)
		add("join-latency/split", key, r.SplitNsPerOp)
	}
	for _, r := range base.Kernels {
		add("kernel", fmt.Sprintf("%s/cpu%d", r.Name, r.CPU), r.NsPerOp)
	}

	matched, fresh := 0, 0
	judge := func(kind, key string, ns float64) error {
		old, ok := oldNs[pair{kind, key}]
		if !ok {
			fresh++
			return nil
		}
		matched++
		delete(oldNs, pair{kind, key})
		if ns > old*maxRegression {
			return fmt.Errorf("trajectory: %s %s regressed %.0f -> %.0f ns/op (%.2fx, cap %.2fx vs baseline)",
				kind, key, old, ns, ns/old, maxRegression)
		}
		return nil
	}
	for _, r := range f.AllReduce {
		// The ring's large-dim rows run the concurrent fan-out path,
		// whose min-of-interleaved estimate is bimodal under GOMAXPROCS
		// oversubscription on this host (same-code reruns move it up to
		// ~1.5x), so a regression cap on it gates on luck, not code.
		// They stay in the file as the documented pathology the
		// pipeline replaces; the rows the runtime actually executes at
		// these dims (pipeline, auto — and every dim=1024 row, which is
		// inline and stable) remain trajectory-gated.
		if r.Algorithm == "ring" && r.Dim > smallDim {
			continue
		}
		if err := judge("allreduce", fmt.Sprintf("%s/%s/w%d/dim%d/cpu%d", r.Transport, r.Algorithm, r.Workers, r.Dim, r.CPU), r.NsPerOp); err != nil {
			return err
		}
	}
	for _, r := range f.RingTransport {
		if err := judge("ring-transport", fmt.Sprintf("%s/%s/w%d/dim%d/cpu%d", r.Transport, r.Algorithm, r.Workers, r.Dim, r.CPU), r.NsPerOp); err != nil {
			return err
		}
	}
	for _, r := range f.TrainMLP {
		key := fmt.Sprintf("%s/w%d/cpu%d", r.Transport, r.Workers, r.CPU)
		if err := judge("train-mlp/sim", key, r.SimNsPerOp); err != nil {
			return err
		}
		if err := judge("train-mlp/live", key, r.LiveNsPerOp); err != nil {
			return err
		}
	}
	for _, r := range f.JoinLatency {
		key := fmt.Sprintf("%s/w%dto%d/cpu%d", r.Transport, r.WorkersFrom, r.WorkersTo, r.CPU)
		if err := judge("join-latency/join", key, r.JoinNsPerOp); err != nil {
			return err
		}
		if err := judge("join-latency/split", key, r.SplitNsPerOp); err != nil {
			return err
		}
	}
	for _, r := range f.Kernels {
		if err := judge("kernel", fmt.Sprintf("%s/cpu%d", r.Name, r.CPU), r.NsPerOp); err != nil {
			return err
		}
	}
	dropped := len(oldNs)
	fmt.Printf("benchcheck: trajectory ok (%d rows within %.0f%% of baseline; %d new, %d dropped)\n",
		matched, 100*(maxRegression-1), fresh, dropped)
	return nil
}

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
