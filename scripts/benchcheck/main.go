// Command benchcheck validates a BENCH_runtime.json produced by
// scripts/bench.sh: all benchmark configurations must be present with
// positive timings, and on a multicore host the live execution engine must
// beat the sequential loop at every worker count >= 4.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type benchFile struct {
	Cores     int `json:"cores"`
	AllReduce []struct {
		Workers int     `json:"workers"`
		Dim     int     `json:"dim"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"allreduce"`
	TrainMLP []struct {
		Workers     int     `json:"workers"`
		SimNsPerOp  float64 `json:"sim_ns_per_op"`
		LiveNsPerOp float64 `json:"live_ns_per_op"`
		LiveSpeedup float64 `json:"live_speedup"`
	} `json:"train_mlp"`
}

func main() {
	if err := check(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func check() error {
	if len(os.Args) != 2 {
		return fmt.Errorf("usage: benchcheck BENCH_runtime.json")
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		return err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return err
	}
	if len(f.AllReduce) != 9 {
		return fmt.Errorf("want 9 allreduce configurations (3 worker counts x 3 dims), got %d", len(f.AllReduce))
	}
	for _, r := range f.AllReduce {
		if r.NsPerOp <= 0 {
			return fmt.Errorf("allreduce n=%d dim=%d: non-positive ns/op", r.Workers, r.Dim)
		}
	}
	if len(f.TrainMLP) != 4 {
		return fmt.Errorf("want 4 train-mlp worker counts, got %d", len(f.TrainMLP))
	}
	for _, r := range f.TrainMLP {
		if r.SimNsPerOp <= 0 || r.LiveNsPerOp <= 0 {
			return fmt.Errorf("train-mlp w=%d: non-positive timing", r.Workers)
		}
		if f.Cores > 1 && r.Workers >= 4 && r.LiveSpeedup <= 1 {
			return fmt.Errorf("train-mlp w=%d: live (%.0f ns/op) did not beat sequential (%.0f ns/op) on a %d-core host",
				r.Workers, r.LiveNsPerOp, r.SimNsPerOp, f.Cores)
		}
	}
	if f.Cores > 1 {
		fmt.Printf("benchcheck: ok (%d cores; live beats sequential at >=4 workers)\n", f.Cores)
	} else {
		fmt.Printf("benchcheck: ok (single core: live-vs-sequential speedup not enforced)\n")
	}
	return nil
}
