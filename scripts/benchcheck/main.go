// Command benchcheck validates a BENCH_runtime.json produced by
// scripts/bench.sh: every benchmark configuration must be present once per
// GOMAXPROCS value in the sweep with positive timings, and the
// live-vs-sequential comparison is only enforced like-for-like — live must
// beat the sequential loop exactly when the host really has >= 4 cores AND
// the run used >= 4 cpus AND >= 4 workers. On fewer cores (or at cpu 1)
// the engines are near parity; those rows are recorded, not judged.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// minMulticoreSpeedup is the enforced live-over-sequential advantage on a
// genuinely parallel configuration.
const minMulticoreSpeedup = 1.10

type benchFile struct {
	HostCores  int   `json:"host_cores"`
	GoMaxProcs []int `json:"gomaxprocs"`
	AllReduce  []struct {
		Workers int     `json:"workers"`
		Dim     int     `json:"dim"`
		CPU     int     `json:"cpu"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"allreduce"`
	TrainMLP []struct {
		Workers     int     `json:"workers"`
		CPU         int     `json:"cpu"`
		SimNsPerOp  float64 `json:"sim_ns_per_op"`
		LiveNsPerOp float64 `json:"live_ns_per_op"`
		LiveSpeedup float64 `json:"live_speedup"`
	} `json:"train_mlp"`
	Kernels []struct {
		Name    string  `json:"name"`
		CPU     int     `json:"cpu"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"kernels"`
}

func main() {
	if err := check(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func check() error {
	if len(os.Args) != 2 {
		return fmt.Errorf("usage: benchcheck BENCH_runtime.json")
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		return err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return err
	}
	if f.HostCores < 1 {
		return fmt.Errorf("host_cores %d", f.HostCores)
	}
	if len(f.GoMaxProcs) == 0 {
		return fmt.Errorf("empty gomaxprocs sweep")
	}
	cpus := make(map[int]bool, len(f.GoMaxProcs))
	for _, c := range f.GoMaxProcs {
		if c < 1 {
			return fmt.Errorf("gomaxprocs value %d", c)
		}
		cpus[c] = true
	}
	nCPU := len(cpus)

	if want := 9 * nCPU; len(f.AllReduce) != want {
		return fmt.Errorf("want %d allreduce entries (3 worker counts x 3 dims x %d cpus), got %d",
			want, nCPU, len(f.AllReduce))
	}
	for _, r := range f.AllReduce {
		if !cpus[r.CPU] {
			return fmt.Errorf("allreduce n=%d dim=%d: cpu %d not in the sweep", r.Workers, r.Dim, r.CPU)
		}
		if r.NsPerOp <= 0 {
			return fmt.Errorf("allreduce n=%d dim=%d cpu=%d: non-positive ns/op", r.Workers, r.Dim, r.CPU)
		}
	}

	if want := 4 * nCPU; len(f.TrainMLP) != want {
		return fmt.Errorf("want %d train-mlp entries (4 worker counts x %d cpus), got %d",
			want, nCPU, len(f.TrainMLP))
	}
	enforced := 0
	for _, r := range f.TrainMLP {
		if !cpus[r.CPU] {
			return fmt.Errorf("train-mlp w=%d: cpu %d not in the sweep", r.Workers, r.CPU)
		}
		if r.SimNsPerOp <= 0 || r.LiveNsPerOp <= 0 {
			return fmt.Errorf("train-mlp w=%d cpu=%d: non-positive timing", r.Workers, r.CPU)
		}
		if f.HostCores >= 4 && r.CPU >= 4 && r.Workers >= 4 {
			enforced++
			if r.LiveSpeedup <= minMulticoreSpeedup {
				return fmt.Errorf("train-mlp w=%d cpu=%d: live speedup %.3f <= %.2f on a %d-core host (sim %.0f ns/op, live %.0f ns/op)",
					r.Workers, r.CPU, r.LiveSpeedup, minMulticoreSpeedup, f.HostCores, r.SimNsPerOp, r.LiveNsPerOp)
			}
		}
	}

	if len(f.Kernels) == 0 {
		return fmt.Errorf("no kernel microbenchmark entries")
	}
	for _, r := range f.Kernels {
		if !cpus[r.CPU] {
			return fmt.Errorf("kernel %q: cpu %d not in the sweep", r.Name, r.CPU)
		}
		if r.NsPerOp <= 0 {
			return fmt.Errorf("kernel %q cpu=%d: non-positive ns/op", r.Name, r.CPU)
		}
	}

	if enforced > 0 {
		fmt.Printf("benchcheck: ok (%d cores; live beats sequential by >%.0f%% on all %d enforced rows)\n",
			f.HostCores, 100*(minMulticoreSpeedup-1), enforced)
	} else {
		fmt.Printf("benchcheck: ok (%d-core host: live-vs-sequential advantage recorded, not enforced)\n",
			f.HostCores)
	}
	return nil
}
