#!/bin/sh
# Runtime performance trajectory: runs the live-execution and kernel
# benchmarks and writes BENCH_runtime.json so successive commits can be
# compared.
#
#   scripts/bench.sh            # writes BENCH_runtime.json in the repo root
#   BENCHTIME=5x scripts/bench.sh
#   CPUS=1,4 scripts/bench.sh   # override the GOMAXPROCS sweep
#
# Every benchmark runs once per GOMAXPROCS value in the sweep (go test -cpu),
# so the file records like-for-like entries: "host_cores" is the machine's
# true core count and each entry carries the "cpu" it ran at. On a genuinely
# multicore host the live engine should beat the sequential loop at >= 4
# workers and >= 4 cpus; on a single core the two are near parity and the
# comparison is recorded but not enforced (scripts/benchcheck applies the
# policy).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3x}"
KERNEL_BENCHTIME="${KERNEL_BENCHTIME:-20x}"
CPUS="${CPUS:-1,2,4}"
OUT="BENCH_runtime.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

HOST_CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

echo "== go test -bench (allreduce + live-vs-sequential, benchtime $BENCHTIME, cpu $CPUS) =="
go test -run '^$' -bench 'BenchmarkAllReduce$|BenchmarkTrainMLPLiveVsSequential|BenchmarkRingTransport' \
	-benchtime "$BENCHTIME" -cpu "$CPUS" . | tee "$RAW"

echo "== go test -bench (tensor kernels, benchtime $KERNEL_BENCHTIME, cpu $CPUS) =="
go test -run '^$' -bench 'BenchmarkMatMul' \
	-benchtime "$KERNEL_BENCHTIME" -cpu "$CPUS" ./internal/tensor | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkLinearForwardBackward|BenchmarkMLPStep$' \
	-benchtime "$KERNEL_BENCHTIME" -cpu "$CPUS" ./internal/nn | tee -a "$RAW"

awk -v host_cores="$HOST_CORES" -v cpus="$CPUS" '
# go test -cpu appends "-N" (the GOMAXPROCS value) to benchmark names —
# except at GOMAXPROCS 1, where the name is left bare.
function cpuof(name,   c) {
	if (name !~ /-[0-9]+$/) return 1
	c = name; sub(/^.*-/, "", c); return c
}
function stripcpu(name) { sub(/-[0-9]+$/, "", name); return name }
/^BenchmarkAllReduce\// {
	split($1, parts, "/")
	sub(/^n/, "", parts[2]); sub(/^dim/, "", parts[3])
	cpu = cpuof(parts[3]); parts[3] = stripcpu(parts[3])
	ar = ar arsep sprintf("    {\"transport\": \"chan\", \"workers\": %s, \"dim\": %s, \"cpu\": %s, \"ns_per_op\": %s}", \
		parts[2], parts[3], cpu, $3)
	arsep = ",\n"
}
# BenchmarkRingTransport/<transport> rows: the reduce over the pluggable
# transports; tcp rows carry bytes/hop and msgs coalesced per network
# write as trailing custom metrics.
/^BenchmarkRingTransport\// {
	split($1, parts, "/")
	tname = parts[2]
	cpu = cpuof(tname); tname = stripcpu(tname)
	bph = 0; mpb = 0
	for (i = 4; i <= NF; i++) {
		if ($i == "bytes/hop") bph = $(i-1)
		if ($i == "msgs/batch") mpb = $(i-1)
	}
	rt = rt rtsep sprintf("    {\"transport\": \"%s\", \"workers\": 4, \"dim\": 65536, \"cpu\": %s, \"ns_per_op\": %s, \"bytes_per_hop\": %s, \"msgs_per_batch\": %s}", \
		tname, cpu, $3, bph, mpb)
	rtsep = ",\n"
}
/^BenchmarkTrainMLPLiveVsSequential\// {
	split($1, parts, "/")
	sub(/^w/, "", parts[2])
	backend = parts[3]
	cpu = cpuof(backend); backend = stripcpu(backend)
	key = parts[2] "/" cpu
	t[key "/" backend] = $3
	if (!(key in seen)) { order[++n] = key; seen[key] = 1 }
}
/^BenchmarkMatMul|^BenchmarkLinearForwardBackward|^BenchmarkMLPStep/ {
	name = $1
	cpu = cpuof(name); name = stripcpu(name)
	sub(/^Benchmark/, "", name)
	kr = kr krsep sprintf("    {\"name\": \"%s\", \"cpu\": %s, \"ns_per_op\": %s}", name, cpu, $3)
	krsep = ",\n"
}
END {
	gp = cpus; gsub(/,/, ", ", gp)
	printf "{\n  \"host_cores\": %s,\n  \"gomaxprocs\": [%s],\n", host_cores, gp
	printf "  \"allreduce\": [\n%s\n  ],\n", ar
	printf "  \"train_mlp\": [\n"
	for (i = 1; i <= n; i++) {
		key = order[i]
		split(key, kp, "/")
		speedup = (t[key "/live"] > 0) ? t[key "/sim"] / t[key "/live"] : 0
		printf "    {\"transport\": \"chan\", \"workers\": %s, \"cpu\": %s, \"sim_ns_per_op\": %s, \"live_ns_per_op\": %s, \"live_speedup\": %.4f}%s\n", \
			kp[1], kp[2], t[key "/sim"], t[key "/live"], speedup, (i < n) ? "," : ""
	}
	printf "  ],\n"
	printf "  \"ring_transport\": [\n%s\n  ],\n", rt
	printf "  \"kernels\": [\n%s\n  ]\n}\n", kr
}' "$RAW" > "$OUT"

echo "== wrote $OUT =="
cat "$OUT"

# Sanity: every configuration must be present at every GOMAXPROCS value,
# and on a genuinely multicore host the live engine must beat the
# sequential loop when both workers and cpus are >= 4.
go run ./scripts/benchcheck "$OUT"
