#!/bin/sh
# Runtime performance trajectory: runs the live-execution benchmarks and
# writes BENCH_runtime.json so successive commits can be compared.
#
#   scripts/bench.sh            # writes BENCH_runtime.json in the repo root
#   BENCHTIME=5x scripts/bench.sh
#
# The JSON records ns/op for the ring all-reduce across (workers, dim) and
# for TrainMLP on both backends across worker counts, plus the live/seq
# speedup per worker count. On a multicore host the live engine should beat
# the sequential loop at >= 4 workers; on a single core the two are near
# parity (the "cores" field says which situation the numbers describe).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3x}"
OUT="BENCH_runtime.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench (allreduce + live-vs-sequential, benchtime $BENCHTIME) =="
go test -run '^$' -bench 'BenchmarkAllReduce$|BenchmarkTrainMLPLiveVsSequential' \
	-benchtime "$BENCHTIME" . | tee "$RAW"

CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

awk -v cores="$CORES" '
/^BenchmarkAllReduce\// {
	split($1, parts, "/")
	sub(/^n/, "", parts[2]); sub(/^dim/, "", parts[3])
	sub(/-[0-9]+$/, "", parts[3])
	ar = ar sep sprintf("    {\"workers\": %s, \"dim\": %s, \"ns_per_op\": %s}", parts[2], parts[3], $3)
	sep = ",\n"
}
/^BenchmarkTrainMLPLiveVsSequential\// {
	split($1, parts, "/")
	sub(/^w/, "", parts[2])
	backend = parts[3]; sub(/-[0-9]+$/, "", backend)
	t[parts[2] "/" backend] = $3
	if (!(parts[2] in seen)) { order[++n] = parts[2]; seen[parts[2]] = 1 }
}
END {
	printf "{\n  \"cores\": %s,\n", cores
	printf "  \"allreduce\": [\n%s\n  ],\n", ar
	printf "  \"train_mlp\": [\n"
	for (i = 1; i <= n; i++) {
		w = order[i]
		speedup = (t[w "/live"] > 0) ? t[w "/sim"] / t[w "/live"] : 0
		printf "    {\"workers\": %s, \"sim_ns_per_op\": %s, \"live_ns_per_op\": %s, \"live_speedup\": %.4f}%s\n", \
			w, t[w "/sim"], t[w "/live"], speedup, (i < n) ? "," : ""
	}
	printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "== wrote $OUT =="
cat "$OUT"

# Sanity: every configuration must be present, and on a multicore host the
# live engine must beat the sequential loop at >= 4 workers.
go run ./scripts/benchcheck "$OUT"
