#!/bin/sh
# Runtime performance trajectory: runs the live-execution and kernel
# benchmarks and writes BENCH_runtime.json so successive commits can be
# compared.
#
#   scripts/bench.sh            # writes BENCH_runtime.json in the repo root
#   BENCHTIME=5x scripts/bench.sh
#   COUNT=3 scripts/bench.sh    # repetitions per benchmark (min is kept)
#   CPUS=1,4 scripts/bench.sh   # override the GOMAXPROCS sweep
#   BENCH_ONLY=allreduce scripts/bench.sh
#                               # collective lanes only: runs the allreduce
#                               # and ring-transport benchmarks, writes
#                               # BENCH_allreduce.json (never the committed
#                               # file), and gates with benchcheck -only
#                               # allreduce — the quick loop for collective
#                               # engine work
#
# Every benchmark runs COUNT times per GOMAXPROCS value in the sweep and
# the MINIMUM ns/op across repetitions is recorded: the minimum is the
# least noisy estimator of the true cost on a shared host, because
# scheduler interference only ever adds time. Crucially, the repetitions
# come from COUNT *separate* `go test -count 1` invocations rather than one
# `-count N` run: go groups -count repetitions of the same leaf
# back-to-back, so a seconds-long host-load burst poisons every sample of
# whichever leaf it lands on (and the sim/live ratio rows would compare
# measurements taken minutes apart). Interleaving whole invocations spaces
# each leaf's samples across the lane's full duration, so a burst costs at
# most one sample per leaf and the min survives. The file records
# like-for-like entries: "host_cores" is the machine's true core count and
# each entry carries the "cpu" it ran at. scripts/benchcheck applies the
# policy (live >= sequential on like-for-like rows, all-reduce
# non-increasing in cpu — every algorithm at dim=1024, pipeline/auto at the
# large dims —, auto >= 2x over the committed ring rows at w8/dim1024,
# tcp-batch within 1.10x of tcp, hot-join within 1.25x of the equivalent
# checkpoint-handed split run) and, when a committed BENCH_runtime.json
# exists in HEAD, gates the trajectory against it (>15% regression on any
# matching row fails).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3x}"
# The dim=1024 all-reduce op costs ~1.5 us: at "3x" each sample is the mean
# of 3 iterations, pure scheduler noise. A time-based benchtime gives the
# tiny ops tens of thousands of iterations per sample. The big dims stay on
# the iteration-based BENCHTIME so their methodology (min of short runs)
# matches the committed baseline the trajectory gate compares against.
SMALL_BENCHTIME="${SMALL_BENCHTIME:-0.1s}"
KERNEL_BENCHTIME="${KERNEL_BENCHTIME:-20x}"
COUNT="${COUNT:-5}"
TRAIN_COUNT="${TRAIN_COUNT:-$COUNT}"
# The small lane's rows feed the tightest monotone gate (1.05x across the
# GOMAXPROCS sweep on ~1 us ops, where a single run-to-run mode shift is
# ~10%), so it takes twice the repetitions: the lane is cheap (~10 s per
# invocation) and the min only converges to the fast mode with enough
# samples at every cpu value.
SMALL_COUNT="${SMALL_COUNT:-$((COUNT * 2))}"
# The large-dim allreduce and ring-transport lanes also feed monotone /
# ratio gates but keep the iteration-based BENCHTIME (their methodology
# must match the committed baseline the trajectory gate compares against —
# the concurrent paths are bimodal, so a time-based sample would record the
# steady-state mix where the baseline recorded min-of-short-runs and every
# comparison would be apples-to-oranges). Robustness comes from doubled
# repetitions instead: both lanes are cheap relative to the train matrix.
LARGE_COUNT="${LARGE_COUNT:-$((COUNT * 2))}"
# The kernel lane is pure unchanged compute, but this host drifts through
# multi-minute slow phases (~20% off the floor); extra interleaved reps
# stretch the lane past a phase so the min survives one.
KERNEL_COUNT="${KERNEL_COUNT:-$((COUNT + 3))}"
CPUS="${CPUS:-1,2,4}"
BENCH_ONLY="${BENCH_ONLY:-}"
case "$BENCH_ONLY" in
""|allreduce) ;;
*) echo "bench.sh: unknown BENCH_ONLY=$BENCH_ONLY (want allreduce)" >&2; exit 1 ;;
esac
OUT="BENCH_runtime.json"
# The filtered run writes a sidecar file: a collective-only sweep must never
# masquerade as the committed full trajectory.
[ "$BENCH_ONLY" = allreduce ] && OUT="BENCH_allreduce.json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
RAW="$TMP/raw.txt"

HOST_CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

# Snapshot the committed benchmark file (if any) before overwriting, so the
# new results can be gated against the trajectory.
BASE=""
if git show HEAD:BENCH_runtime.json > "$TMP/base.json" 2>/dev/null; then
	BASE="$TMP/base.json"
fi

# reps N BENCHTIME PKG PATTERN — run the benchmark N times as separate
# single-count invocations (see the interleaving rationale above).
reps() {
	_n=$1; _bt=$2; _pkg=$3; _pat=$4; _i=0
	while [ "$_i" -lt "$_n" ]; do
		_i=$((_i + 1))
		go test -run '^$' -bench "$_pat" \
			-benchtime "$_bt" -count 1 -cpu "$CPUS" "$_pkg" | tee -a "$RAW"
	done
}

: > "$RAW"

echo "== small-message allreduce, all algorithms (benchtime $SMALL_BENCHTIME, $SMALL_COUNT interleaved runs, cpu $CPUS) =="
reps "$SMALL_COUNT" "$SMALL_BENCHTIME" . 'BenchmarkAllReduce$/.*/dim1024$'

echo "== large allreduce (benchtime $BENCHTIME, $LARGE_COUNT interleaved runs, cpu $CPUS) =="
reps "$LARGE_COUNT" "$BENCHTIME" . 'BenchmarkAllReduce$/.*/dim(65536|1048576)$'

echo "== ring transport (benchtime $BENCHTIME, $LARGE_COUNT interleaved runs, cpu $CPUS) =="
reps "$LARGE_COUNT" "$BENCHTIME" . 'BenchmarkRingTransport'

if [ -z "$BENCH_ONLY" ]; then
	echo "== live-vs-sequential (benchtime $BENCHTIME, $TRAIN_COUNT interleaved runs, cpu $CPUS) =="
	reps "$TRAIN_COUNT" "$BENCHTIME" . 'BenchmarkTrainMLPLiveVsSequential'

	echo "== elastic join latency (benchtime $BENCHTIME, $TRAIN_COUNT interleaved runs, cpu $CPUS) =="
	reps "$TRAIN_COUNT" "$BENCHTIME" . 'BenchmarkElasticJoin'

	echo "== tensor kernels (benchtime $KERNEL_BENCHTIME, $KERNEL_COUNT interleaved runs, cpu $CPUS) =="
	reps "$KERNEL_COUNT" "$KERNEL_BENCHTIME" ./internal/tensor 'BenchmarkMatMul'
	reps "$KERNEL_COUNT" "$KERNEL_BENCHTIME" ./internal/nn 'BenchmarkLinearForwardBackward|BenchmarkMLPStep$'
fi

awk -v host_cores="$HOST_CORES" -v cpus="$CPUS" '
# go test -cpu appends "-N" (the GOMAXPROCS value) to benchmark names —
# except at GOMAXPROCS 1, where the name is left bare.
function cpuof(name,   c) {
	if (name !~ /-[0-9]+$/) return 1
	c = name; sub(/^.*-/, "", c); return c
}
function stripcpu(name) { sub(/-[0-9]+$/, "", name); return name }
# -count > 1 repeats every benchmark line; keep the minimum ns/op per key
# (scheduler noise only ever adds time, so min is the honest estimate).
function keepmin(arr, key, val) {
	if (!(key in arr) || val + 0 < arr[key] + 0) { arr[key] = val; return 1 }
	return 0
}
# BenchmarkAllReduce/n<N>/dim<D>/<algorithm> rows: the in-process collective
# per worker count, payload, and algorithm (ring, hd, pipeline, auto).
/^BenchmarkAllReduce\// {
	split($1, parts, "/")
	sub(/^n/, "", parts[2]); sub(/^dim/, "", parts[3])
	alg = parts[4]
	cpu = cpuof(alg); alg = stripcpu(alg)
	key = parts[2] SUBSEP parts[3] SUBSEP alg SUBSEP cpu
	keepmin(arns, key, $3)
	if (!(key in arseen)) { arorder[++arn] = key; arseen[key] = 1 }
}
# BenchmarkRingTransport/<transport> rows: the reduce over the pluggable
# transports; a -hd or -pipeline suffix names the collective algorithm the
# chan ring ran (bare names mean ring); tcp rows carry bytes/hop and msgs
# coalesced per network write as trailing custom metrics (taken from the
# fastest repetition).
/^BenchmarkRingTransport\// {
	split($1, parts, "/")
	tname = parts[2]
	cpu = cpuof(tname); tname = stripcpu(tname)
	talg = "ring"
	if (sub(/-hd$/, "", tname)) talg = "hd"
	else if (sub(/-pipeline$/, "", tname)) talg = "pipeline"
	bph = 0; mpb = 0
	for (i = 4; i <= NF; i++) {
		if ($i == "bytes/hop") bph = $(i-1)
		if ($i == "msgs/batch") mpb = $(i-1)
	}
	key = tname SUBSEP talg SUBSEP cpu
	if (keepmin(rtns, key, $3)) { rtbph[key] = bph; rtmpb[key] = mpb }
	if (!(key in rtseen)) { rtorder[++rtn] = key; rtseen[key] = 1 }
}
/^BenchmarkTrainMLPLiveVsSequential\// {
	split($1, parts, "/")
	sub(/^w/, "", parts[2])
	backend = parts[3]
	cpu = cpuof(backend); backend = stripcpu(backend)
	key = parts[2] "/" cpu
	keepmin(t, key "/" backend, $3)
	if (!(key in seen)) { order[++n] = key; seen[key] = 1 }
}
# BenchmarkElasticJoin/w<F>to<T>/<leg> rows: the hot-join run (join) vs the
# identical training arithmetic as two checkpoint-handed static runs
# (split); join/split is the elasticity tax benchcheck caps.
/^BenchmarkElasticJoin\// {
	split($1, parts, "/")
	conf = parts[2]
	leg = parts[3]
	cpu = cpuof(leg); leg = stripcpu(leg)
	sub(/^w/, "", conf); split(conf, ft, "to")
	key = ft[1] SUBSEP ft[2] SUBSEP cpu
	keepmin(ejns, key SUBSEP leg, $3)
	if (!(key in ejseen)) { ejorder[++ejn] = key; ejseen[key] = 1 }
}
/^BenchmarkMatMul|^BenchmarkLinearForwardBackward|^BenchmarkMLPStep/ {
	name = $1
	cpu = cpuof(name); name = stripcpu(name)
	sub(/^Benchmark/, "", name)
	key = name SUBSEP cpu
	keepmin(kns, key, $3)
	if (!(key in kseen)) { korder[++kn] = key; kseen[key] = 1 }
}
END {
	gp = cpus; gsub(/,/, ", ", gp)
	printf "{\n  \"host_cores\": %s,\n  \"gomaxprocs\": [%s],\n", host_cores, gp
	printf "  \"allreduce\": [\n"
	for (i = 1; i <= arn; i++) {
		key = arorder[i]; split(key, kp, SUBSEP)
		printf "    {\"transport\": \"chan\", \"algorithm\": \"%s\", \"workers\": %s, \"dim\": %s, \"cpu\": %s, \"ns_per_op\": %s}%s\n", \
			kp[3], kp[1], kp[2], kp[4], arns[key], (i < arn) ? "," : ""
	}
	printf "  ],\n"
	printf "  \"train_mlp\": [\n"
	for (i = 1; i <= n; i++) {
		key = order[i]
		split(key, kp, "/")
		speedup = (t[key "/live"] > 0) ? t[key "/sim"] / t[key "/live"] : 0
		printf "    {\"transport\": \"chan\", \"workers\": %s, \"cpu\": %s, \"sim_ns_per_op\": %s, \"live_ns_per_op\": %s, \"live_speedup\": %.4f}%s\n", \
			kp[1], kp[2], t[key "/sim"], t[key "/live"], speedup, (i < n) ? "," : ""
	}
	printf "  ],\n"
	printf "  \"join_latency\": [\n"
	for (i = 1; i <= ejn; i++) {
		key = ejorder[i]; split(key, kp, SUBSEP)
		jns = ejns[key SUBSEP "join"]; sns = ejns[key SUBSEP "split"]
		ratio = (sns > 0) ? jns / sns : 0
		printf "    {\"transport\": \"chan\", \"workers_from\": %s, \"workers_to\": %s, \"cpu\": %s, \"join_ns_per_op\": %s, \"split_ns_per_op\": %s, \"join_over_split\": %.4f}%s\n", \
			kp[1], kp[2], kp[3], jns, sns, ratio, (i < ejn) ? "," : ""
	}
	printf "  ],\n"
	printf "  \"ring_transport\": [\n"
	for (i = 1; i <= rtn; i++) {
		key = rtorder[i]; split(key, kp, SUBSEP)
		printf "    {\"transport\": \"%s\", \"algorithm\": \"%s\", \"workers\": 4, \"dim\": 65536, \"cpu\": %s, \"ns_per_op\": %s, \"bytes_per_hop\": %s, \"msgs_per_batch\": %s}%s\n", \
			kp[1], kp[2], kp[3], rtns[key], rtbph[key], rtmpb[key], (i < rtn) ? "," : ""
	}
	printf "  ],\n"
	printf "  \"kernels\": [\n"
	for (i = 1; i <= kn; i++) {
		key = korder[i]; split(key, kp, SUBSEP)
		printf "    {\"name\": \"%s\", \"cpu\": %s, \"ns_per_op\": %s}%s\n", \
			kp[1], kp[2], kns[key], (i < kn) ? "," : ""
	}
	printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "== wrote $OUT =="
cat "$OUT"

# Policy: every configuration present at every GOMAXPROCS value; live >=
# sequential on like-for-like rows (loud failure if no row qualifies);
# all-reduce must not get slower with more cpus (every algorithm at
# dim=1024, pipeline/auto at the large dims); auto must beat the committed
# ring rows by >= 2x at w8/dim1024; tcp-batch within 1.10x of plain tcp;
# and, against the committed baseline, no matching row more than 15%
# slower. The filtered run checks only the collective sections.
ONLY=""
[ "$BENCH_ONLY" = allreduce ] && ONLY="-only allreduce"
if [ -n "$BASE" ]; then
	go run ./scripts/benchcheck $ONLY "$OUT" "$BASE"
else
	echo "== no committed BENCH_runtime.json in HEAD; skipping trajectory gate =="
	go run ./scripts/benchcheck $ONLY "$OUT"
fi
