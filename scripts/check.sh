#!/bin/sh
# Full local check: build, vet, and the test suite with the race detector.
set -eu

cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "OK"
