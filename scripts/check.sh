#!/bin/sh
# Full local check: build, vet, the test suite with the race detector, and
# a short audited fuzz smoke on each fuzz target. The optperf fuzz target
# solves through SolveAudited in strict mode, so every fuzz input also
# verifies the paper's optimality invariants (audit harness, DESIGN.md).
set -eu

cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== audited fuzz smoke: optperf FuzzSolve =="
go test -run='^$' -fuzz=FuzzSolve -fuzztime=10s ./internal/optperf

echo "== audited fuzz smoke: gns FuzzEstimators =="
go test -run='^$' -fuzz=FuzzEstimators -fuzztime=10s ./internal/gns

echo "OK"
