#!/bin/sh
# Full local check: build, vet, the test suite with the race detector, and
# a short audited fuzz smoke on each fuzz target. The optperf fuzz target
# solves through SolveAudited in strict mode, so every fuzz input also
# verifies the paper's optimality invariants (audit harness, DESIGN.md).
set -eu

cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

# The live execution engine is the most concurrency-dense code in the repo
# (two goroutines per worker, channel-linked ring, shared comm buffers), so
# run its package and the collective under the race detector explicitly and
# with a higher count even though ./... above already covers them once.
echo "== go test -race -count=2 (runtime + allreduce) =="
go test -race -count=2 ./internal/runtime ./internal/allreduce

# The tensor kernel worker pool shards matmuls across goroutines and is
# resized at runtime (SetParallelism); run its parallel property tests —
# parallel == serial bitwise, concurrent callers, pool resizing — under the
# race detector at several GOMAXPROCS values.
echo "== go test -race -count=2 -cpu 1,2,4 (tensor kernel pool) =="
go test -race -count=2 -cpu 1,2,4 -run 'Parallel|Pool' ./internal/tensor

# The fault-tolerance layer races workers against injected stalls, drops,
# and kills and drives the retry/eviction state machine from timeouts; run
# the injector package and the fault-path tests (guarded ring, eviction,
# differential recovery) under the race detector at several GOMAXPROCS
# values — determinism claims must hold at every parallelism level.
echo "== go test -race -count=2 -cpu 1,2,4 (fault injection + fault paths) =="
go test -race -count=2 -cpu 1,2,4 ./internal/faultinject
go test -race -count=2 -cpu 1,2,4 -run 'Fault|Evict|Recovery|Guarded' ./internal/runtime ./internal/allreduce

# The TCP ring transport runs a writer and a reader goroutine per process
# against real sockets, and the multi-process worker runtime layers the
# deterministic training loop on top; run both transports' conformance
# suite and the worker bitwise-parity tests under the race detector at
# several GOMAXPROCS values.
echo "== go test -race -cpu 1,2,4 (tcp transport + worker runtime) =="
go test -race -count=1 -cpu 1,2,4 -run 'Transport|TCP|Worker' ./internal/allreduce ./internal/runtime

echo "== multi-process smoke: coordinator + worker processes over loopback tcp =="
BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN/cannikin" ./cmd/cannikin
go build -o "$BIN/cannikin-worker" ./cmd/cannikin-worker
# 3 worker processes, adaptive batching; the coordinator itself verifies
# every rank's weight hash against the in-process channel-transport
# reference, so a plain exit-0 here is the bitwise cross-check.
"$BIN/cannikin" -mlp -transport tcp -mlp-batches 8,4,2 -epochs 1 \
	-batch-delay auto -worker-bin "$BIN/cannikin-worker" >/dev/null
# 2 worker processes, guarded hops, no batching.
"$BIN/cannikin" -mlp -transport tcp -mlp-batches 6,6 -epochs 1 \
	-guard -worker-bin "$BIN/cannikin-worker" >/dev/null

# Elastic lane: the hot-join/autoscaler differential suite asserts bitwise
# trajectory equality across membership changes (join ≡ fresh run from the
# join checkpoint; join-then-evict returns to the survivor trajectory), so
# it must hold under the race detector at every parallelism level.
echo "== elastic lane: join/evict differential suite -race -cpu 1,2,4 =="
go test -race -count=1 -cpu 1,2,4 -run 'Elastic|Join|Autoscal' ./internal/runtime .
go test -race -count=1 -run 'Resize|AutoscaleJobs' ./internal/jobs

echo "== elastic smoke: tcp hot-join, a 4th worker process joins mid-run =="
# Generation 1 runs 3 worker processes; at epoch 1 the coordinator hands
# the weights+velocity checkpoint to a 4-process generation. The
# coordinator verifies the final hash on every rank and against the
# in-process hot-join reference, so exit 0 is the bitwise cross-check.
"$BIN/cannikin" -mlp -transport tcp -mlp-batches 6,4,2 -epochs 2 \
	-join 1:4 -worker-bin "$BIN/cannikin-worker" >/dev/null

echo "== live-backend smoke: short epochs through the CLI =="
go run ./cmd/cannikin -mlp -backend live -epochs 2 -mlp-batches 16,8,4 -bucket-bytes 2048 -kernel-shards 2 >/dev/null

# The collective-engine benchmarks feed scripts/bench.sh's JSON parser and
# the benchcheck gates; a renamed sub-benchmark or a panicking algorithm
# path should fail here, not silently produce a malformed BENCH file.
echo "== allreduce bench smoke: every algorithm x worker x dim runs once =="
go test -run '^$' -bench 'BenchmarkAllReduce$' -benchtime 1x . >/dev/null

# Profiling must stay wired up: the live-vs-sequential bench is the tool
# used to chase scheduling regressions, so a broken -cpuprofile path (or a
# bench rename) should fail CI, not be discovered mid-investigation.
echo "== pprof smoke: cpu profile of the live-vs-sequential bench parses =="
go test -run '^$' -bench 'BenchmarkTrainMLPLiveVsSequential/w4/live' -benchtime 1x \
	-cpuprofile "$BIN/cpu.pprof" -o "$BIN/bench.test" . >/dev/null
go tool pprof -top "$BIN/bench.test" "$BIN/cpu.pprof" | head -n 12
go tool pprof -top "$BIN/bench.test" "$BIN/cpu.pprof" | grep -q 'flat' \
	|| { echo "pprof output missing profile table" >&2; exit 1; }

echo "== fault-tolerance smoke: injected kill evicts and the run completes =="
go run ./cmd/cannikin -mlp -backend live -epochs 2 -mlp-batches 8,8,8 -bucket-bytes 1024 -fault kill:1@6 >/dev/null

echo "== server lane: multi-tenant scheduler + HTTP service under -race =="
go test -race -count=1 ./internal/jobs ./internal/server

echo "== server smoke: submit/stream/cancel over localhost, then drain =="
go build -o "$BIN/cannikin-serve" ./cmd/cannikin-serve
go build -o "$BIN/cannikin-loadtest" ./cmd/cannikin-loadtest
"$BIN/cannikin-serve" -addr 127.0.0.1:0 -devices 6 > "$BIN/serve.log" 2>&1 &
SRV_PID=$!
i=0
SRV_ADDR=""
while [ "$i" -lt 100 ]; do
	SRV_ADDR=$(sed -n 's/^listening on \([^ ]*\).*/\1/p' "$BIN/serve.log")
	[ -n "$SRV_ADDR" ] && break
	i=$((i+1)); sleep 0.1
done
[ -n "$SRV_ADDR" ] || { echo "cannikin-serve never listened" >&2; cat "$BIN/serve.log" >&2; exit 1; }
# Submit 3 concurrent jobs, stream one's epochs to completion, cancel one.
"$BIN/cannikin-loadtest" -url "http://$SRV_ADDR" -jobs 3
kill -TERM "$SRV_PID"
wait "$SRV_PID" || { echo "cannikin-serve exited non-zero" >&2; cat "$BIN/serve.log" >&2; exit 1; }
grep -q "drained cleanly" "$BIN/serve.log" \
	|| { echo "cannikin-serve did not drain cleanly" >&2; cat "$BIN/serve.log" >&2; exit 1; }

echo "== load-test smoke: 120 concurrent jobs, goodput vs equal-split =="
"$BIN/cannikin-loadtest" -jobs 120 -devices 12 -timeout 2m

echo "== audited fuzz smoke: optperf FuzzSolve =="
go test -run='^$' -fuzz=FuzzSolve -fuzztime=10s ./internal/optperf

echo "== audited fuzz smoke: gns FuzzEstimators =="
go test -run='^$' -fuzz=FuzzEstimators -fuzztime=10s ./internal/gns

echo "== fault fuzz smoke: runtime FuzzRingFaults =="
go test -run='^$' -fuzz=FuzzRingFaults -fuzztime=10s ./internal/runtime

echo "== elastic fuzz smoke: runtime FuzzElasticMembership =="
go test -run='^$' -fuzz=FuzzElasticMembership -fuzztime=10s ./internal/runtime

echo "OK"
