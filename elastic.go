package cannikin

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"cannikin/internal/runtime"
)

// JoinSpec schedules one worker hot-join: at the given epoch boundary the
// live cluster grows by one worker. The join is a two-phase commit — every
// incumbent replica's weights and optimizer momentum are verified bitwise
// identical and checkpointed, the joiner's compute profile is bootstrapped
// with a few timed probe passes (the paper's Eq. 8 admission), and only
// then does the grown cluster start training. Incumbents keep their
// momentum; the joiner receives the identical checkpoint, so the replicas
// never diverge.
type JoinSpec struct {
	// Epoch is the epoch boundary the worker joins at (1 ≤ Epoch < Epochs).
	// When an eviction pushes training past this epoch, the join fires at
	// the next epoch boundary instead. Joins must be listed in
	// non-decreasing epoch order.
	Epoch int
	// Batch is the joining worker's local batch size (≥ 1).
	Batch int
	// ProbeSteps is how many timed probe passes (per batch size) bootstrap
	// the joiner's compute profile (default 3).
	ProbeSteps int
	// Replan picks the grown cluster's batch policy: "keep" or "" (default
	// — incumbents keep their batches, the joiner adopts Batch) or
	// "optperf" (re-solve OptPerf over the incumbents' live profile plus
	// the joiner's probe model; falls back to keep when a model is
	// missing).
	Replan string
}

// JoinRecord reports one committed worker hot-join of an elastic run.
type JoinRecord struct {
	// Epoch is the first epoch the grown cluster trained; Step the global
	// committed step count at the join.
	Epoch, Step int
	// Worker is the joiner's original worker index: joins number onward
	// from the run's initial worker count, stable across evictions.
	Worker int
	// Batch is the joiner's adopted local batch; Batches the grown
	// cluster's full plan.
	Batch   int
	Batches []int
	// Checkpoint and Velocity are the flat weight vector and SGD momentum
	// every replica of the grown cluster started from. A fresh run seeded
	// with InitWeights = Checkpoint, InitVelocity = Velocity,
	// LocalBatches = Batches, and Resume = "join-<n>" (n counting joins
	// from 1) reproduces the post-join trajectory bitwise.
	Checkpoint []float64
	Velocity   []float64
	// PerSample is the joiner's Eq. 8 per-sample compute time measured by
	// the admission probe (0 when the probe could not measure).
	PerSample float64
	// Replanned reports that OptPerf re-planning produced the grown
	// batches.
	Replanned bool
	// Reason says why the join happened: "scheduled" or the autoscaler's
	// explanation.
	Reason string
}

// AutoscaleConfig enables the goodput-driven autoscaler: at each epoch
// boundary it prices candidate memberships with the goodput model
// (throughput × gradient-noise statistical efficiency, bootstrapped from
// the live profile via Eq. 8) and grows through the hot-join path while
// the marginal worker's predicted contribution exceeds GrowThreshold, or
// sheds the marginal worker through the eviction path when its
// contribution falls below ShrinkThreshold. Live backend only.
type AutoscaleConfig struct {
	// MinWorkers and MaxWorkers bound the membership (defaults 1 and the
	// current size — the autoscaler never grows unless MaxWorkers says so).
	MinWorkers, MaxWorkers int
	// GrowThreshold is the minimum relative predicted-goodput gain that
	// justifies admitting one more worker (default 0.05).
	GrowThreshold float64
	// ShrinkThreshold, when positive, sheds the marginal worker whenever
	// removing it costs less than this relative goodput fraction. Zero
	// disables shrinking.
	ShrinkThreshold float64
	// JoinBatch is an admitted worker's local batch; zero derives the mean
	// incumbent batch.
	JoinBatch int
	// BaseBatch is the reference batch B0 for the statistical-efficiency
	// term; zero uses the observed global batch (pure throughput).
	BaseBatch int
	// ProbeSteps and Replan parameterize the joins the autoscaler issues,
	// exactly like the JoinSpec fields of the same names.
	ProbeSteps int
	Replan     string
}

// replanOf maps a public replan policy name to the runtime's.
func replanOf(name string) (string, error) {
	switch name {
	case "", "keep":
		return runtime.ReplanKeep, nil
	case "optperf":
		return runtime.ReplanOptPerf, nil
	default:
		return "", fmt.Errorf("cannikin: unknown replan policy %q", name)
	}
}

// lowerJoins converts the public join schedule to the runtime's.
func lowerJoins(joins []JoinSpec) ([]runtime.Join, error) {
	if len(joins) == 0 {
		return nil, nil
	}
	out := make([]runtime.Join, len(joins))
	for i, j := range joins {
		replan, err := replanOf(j.Replan)
		if err != nil {
			return nil, err
		}
		out[i] = runtime.Join{Epoch: j.Epoch, Batch: j.Batch, ProbeSteps: j.ProbeSteps, Replan: replan}
	}
	return out, nil
}

// lowerAutoscale converts the public autoscaler config to the runtime's
// controller.
func (a *AutoscaleConfig) lower() (runtime.ElasticController, error) {
	if a == nil {
		return nil, nil
	}
	replan, err := replanOf(a.Replan)
	if err != nil {
		return nil, err
	}
	if a.MinWorkers < 0 || a.MaxWorkers < 0 || a.GrowThreshold < 0 || a.ShrinkThreshold < 0 {
		return nil, fmt.Errorf("cannikin: negative autoscale bound in %+v", *a)
	}
	return &runtime.Autoscaler{
		MinWorkers:      a.MinWorkers,
		MaxWorkers:      a.MaxWorkers,
		GrowThreshold:   a.GrowThreshold,
		ShrinkThreshold: a.ShrinkThreshold,
		JoinBatch:       a.JoinBatch,
		BaseBatch:       a.BaseBatch,
		ProbeSteps:      a.ProbeSteps,
		Replan:          replan,
	}, nil
}

// checkpointFile is the on-disk checkpoint: weights and SGD velocity as
// base64 little-endian IEEE-754 bits, so the round trip is bitwise exact by
// construction rather than by decimal-formatting care.
type checkpointFile struct {
	Dim      int    `json:"dim"`
	Weights  string `json:"weights"`
	Velocity string `json:"velocity,omitempty"`
}

// packFloats encodes a float vector as base64 little-endian float64 bits.
func packFloats(xs []float64) string {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// unpackFloats reverses packFloats.
func unpackFloats(s string) ([]float64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("length %d is not a multiple of 8", len(buf))
	}
	if len(buf) == 0 {
		return nil, nil
	}
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// SaveCheckpoint writes weights and optimizer velocity to path in the
// checkpoint format the cannikin tools hand between process generations of
// an elastic run. The encoding round-trips every float64 bitwise.
func SaveCheckpoint(path string, weights, velocity []float64) error {
	if len(velocity) != 0 && len(velocity) != len(weights) {
		return fmt.Errorf("cannikin: checkpoint velocity dim %d, want %d", len(velocity), len(weights))
	}
	cf := checkpointFile{Dim: len(weights), Weights: packFloats(weights)}
	if len(velocity) > 0 {
		cf.Velocity = packFloats(velocity)
	}
	data, err := json.MarshalIndent(&cf, "", "  ")
	if err != nil {
		return fmt.Errorf("cannikin: encode checkpoint: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("cannikin: write checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint. Velocity is
// nil when the file carries none (a post-eviction checkpoint).
func LoadCheckpoint(path string) (weights, velocity []float64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("cannikin: read checkpoint: %w", err)
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, nil, fmt.Errorf("cannikin: decode checkpoint %s: %w", path, err)
	}
	if weights, err = unpackFloats(cf.Weights); err != nil {
		return nil, nil, fmt.Errorf("cannikin: checkpoint %s weights: %w", path, err)
	}
	if len(weights) != cf.Dim {
		return nil, nil, fmt.Errorf("cannikin: checkpoint %s dim %d, want %d", path, len(weights), cf.Dim)
	}
	if cf.Velocity != "" {
		if velocity, err = unpackFloats(cf.Velocity); err != nil {
			return nil, nil, fmt.Errorf("cannikin: checkpoint %s velocity: %w", path, err)
		}
		if len(velocity) != len(weights) {
			return nil, nil, fmt.Errorf("cannikin: checkpoint %s velocity dim %d, want %d", path, len(velocity), len(weights))
		}
	}
	return weights, velocity, nil
}

// joinRecordOf converts the internal join record to the public one.
func joinRecordOf(jr runtime.JoinRecord) JoinRecord {
	return JoinRecord{
		Epoch:      jr.Epoch,
		Step:       jr.Step,
		Worker:     jr.Worker,
		Batch:      jr.Batch,
		Batches:    append([]int(nil), jr.Batches...),
		Checkpoint: jr.Checkpoint,
		Velocity:   jr.Velocity,
		PerSample:  jr.PerSample,
		Replanned:  jr.Replanned,
		Reason:     jr.Reason,
	}
}
