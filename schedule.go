package cannikin

import (
	"context"
	"errors"
	"fmt"

	"cannikin/internal/gpu"
	"cannikin/internal/optperf"
	"cannikin/internal/rng"
	"cannikin/internal/sched"
	"cannikin/internal/simtime"
	"cannikin/internal/trainer"
	"cannikin/internal/workload"
)

// AllocationPolicy constrains how the scheduler carves GPUs out of a mixed
// pool.
type AllocationPolicy string

// Allocation policies.
const (
	// PolicyHeterogeneous lets one job span mixed GPU models — possible
	// because Cannikin trains efficiently on whatever mix it receives.
	PolicyHeterogeneous AllocationPolicy = "heterogeneous"
	// PolicyHomogeneous restricts each job to a single GPU model, like
	// existing schedulers (Section 6).
	PolicyHomogeneous AllocationPolicy = "homogeneous"
)

// JobSpec is one queued training job.
type JobSpec struct {
	ID       string
	Workload string
	GPUs     int
	// SubmitAtSeconds is the submission instant on the simulated timeline.
	SubmitAtSeconds float64
}

// ScheduleConfig configures a multi-job scheduling run over a shared pool.
type ScheduleConfig struct {
	// PoolModels lists the pool's GPU catalog keys (see GPUModels).
	PoolModels []string
	Policy     AllocationPolicy
	Jobs       []JobSpec
	// System trains each job (default Cannikin).
	System SystemKind
	Seed   uint64
}

// JobRecord is one completed job's schedule entry.
type JobRecord struct {
	ID            string
	StartSeconds  float64
	FinishSeconds float64
	WaitSeconds   float64
	Devices       []string
}

// ScheduleReport is a completed scheduling run.
type ScheduleReport struct {
	Records []JobRecord
	// MakespanSeconds is the finish time of the last job.
	MakespanSeconds float64
	// TotalWaitSeconds sums queueing delay across jobs.
	TotalWaitSeconds float64
}

// Schedule runs a stream of training jobs over a shared heterogeneous GPU
// pool under the chosen allocation policy (Section 6's scheduler
// integration). It is ScheduleContext with a background context.
func Schedule(cfg ScheduleConfig) (*ScheduleReport, error) {
	return ScheduleContext(context.Background(), cfg)
}

// ScheduleContext runs a scheduling run whose training jobs check ctx at
// every epoch boundary: a canceled context aborts the run with the
// context's error wrapped.
func ScheduleContext(ctx context.Context, cfg ScheduleConfig) (*ScheduleReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(cfg.PoolModels) == 0 {
		return nil, errors.New("cannikin: empty GPU pool")
	}
	if len(cfg.Jobs) == 0 {
		return nil, errors.New("cannikin: no jobs")
	}
	var policy sched.Policy
	switch cfg.Policy {
	case PolicyHeterogeneous, "":
		policy = sched.Heterogeneous
	case PolicyHomogeneous:
		policy = sched.HomogeneousOnly
	default:
		return nil, fmt.Errorf("cannikin: unknown policy %q", cfg.Policy)
	}
	system := cfg.System
	if system == "" {
		system = SystemCannikin
	}
	if system == SystemHetPipe {
		return nil, errors.New("cannikin: the scheduler drives data-parallel systems only")
	}
	if _, err := buildSystem(system, 0, optperf.AuditOff); err != nil {
		return nil, err
	}

	src := rng.New(cfg.Seed).Split("schedule")
	devices := make([]*gpu.Device, len(cfg.PoolModels))
	for i, key := range cfg.PoolModels {
		d, err := gpu.NewDevice(fmt.Sprintf("%s-%d", key, i), key, src)
		if err != nil {
			return nil, err
		}
		devices[i] = d
	}
	s, err := sched.New(devices, policy, func() trainer.System {
		sys, err := buildSystem(system, 0, optperf.AuditOff)
		if err != nil {
			// buildSystem only fails for unknown kinds, checked above.
			panic(err)
		}
		return sys
	}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s.SetContext(ctx)
	for _, j := range cfg.Jobs {
		w, err := workload.Get(j.Workload)
		if err != nil {
			return nil, fmt.Errorf("job %s: %w", j.ID, err)
		}
		if err := s.Submit(sched.Job{
			ID:       j.ID,
			Workload: w,
			GPUs:     j.GPUs,
			SubmitAt: simtime.Time(simtime.FromSeconds(j.SubmitAtSeconds)),
		}); err != nil {
			return nil, err
		}
	}
	recs, err := s.Run()
	if err != nil {
		return nil, err
	}
	out := &ScheduleReport{MakespanSeconds: s.Makespan().Seconds()}
	for _, r := range recs {
		jr := JobRecord{
			ID:            r.ID,
			StartSeconds:  r.Start.Seconds(),
			FinishSeconds: r.Finish.Seconds(),
			WaitSeconds:   r.Wait.Seconds(),
			Devices:       append([]string(nil), r.Devices...),
		}
		out.Records = append(out.Records, jr)
		out.TotalWaitSeconds += jr.WaitSeconds
	}
	return out, nil
}
