package cannikin

import (
	"strings"
	"testing"
)

func schedulePool() []string {
	return []string{"A100", "A100", "V100", "V100", "RTX6000", "RTX6000", "RTX6000", "RTX6000"}
}

func TestSchedulePublicAPI(t *testing.T) {
	rep, err := Schedule(ScheduleConfig{
		PoolModels: schedulePool(),
		Policy:     PolicyHeterogeneous,
		Jobs: []JobSpec{
			{ID: "a", Workload: "cifar10", GPUs: 4},
			{ID: "b", Workload: "cifar10", GPUs: 4, SubmitAtSeconds: 1},
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 2 {
		t.Fatalf("%d records", len(rep.Records))
	}
	if rep.MakespanSeconds <= 0 {
		t.Fatal("zero makespan")
	}
	for _, r := range rep.Records {
		if r.FinishSeconds <= r.StartSeconds || len(r.Devices) != 4 {
			t.Fatalf("bad record %+v", r)
		}
	}
}

func TestScheduleHeterogeneousBeatsHomogeneous(t *testing.T) {
	jobs := []JobSpec{
		{ID: "a", Workload: "cifar10", GPUs: 4},
		{ID: "b", Workload: "cifar10", GPUs: 4, SubmitAtSeconds: 1},
		{ID: "c", Workload: "cifar10", GPUs: 3, SubmitAtSeconds: 2},
	}
	run := func(p AllocationPolicy) *ScheduleReport {
		rep, err := Schedule(ScheduleConfig{PoolModels: schedulePool(), Policy: p, Jobs: jobs, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	het := run(PolicyHeterogeneous)
	hom := run(PolicyHomogeneous)
	if het.MakespanSeconds >= hom.MakespanSeconds {
		t.Fatalf("heterogeneous makespan %v >= homogeneous %v", het.MakespanSeconds, hom.MakespanSeconds)
	}
	// Heterogeneous allocations actually mix models.
	mixed := false
	for _, r := range het.Records {
		prefix := strings.Split(r.Devices[0], "-")[0]
		for _, d := range r.Devices[1:] {
			if strings.Split(d, "-")[0] != prefix {
				mixed = true
			}
		}
	}
	if !mixed {
		t.Fatal("no mixed allocation under the heterogeneous policy")
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := Schedule(ScheduleConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Schedule(ScheduleConfig{PoolModels: schedulePool()}); err == nil {
		t.Fatal("no jobs accepted")
	}
	if _, err := Schedule(ScheduleConfig{
		PoolModels: schedulePool(),
		Policy:     "magic",
		Jobs:       []JobSpec{{ID: "a", Workload: "cifar10", GPUs: 1}},
	}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Schedule(ScheduleConfig{
		PoolModels: schedulePool(),
		System:     SystemHetPipe,
		Jobs:       []JobSpec{{ID: "a", Workload: "cifar10", GPUs: 1}},
	}); err == nil {
		t.Fatal("hetpipe accepted by scheduler")
	}
	if _, err := Schedule(ScheduleConfig{
		PoolModels: schedulePool(),
		Jobs:       []JobSpec{{ID: "a", Workload: "nope", GPUs: 1}},
	}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
