// Package cannikin is a reproduction, in pure Go, of "Cannikin: Optimal
// Adaptive Distributed DNN Training over Heterogeneous Clusters"
// (MIDDLEWARE 2024). It provides:
//
//   - The OptPerf solver (Algorithm 1): given per-node linear compute-time
//     models and the cluster communication constants, compute the optimal
//     batch processing time and local batch sizes for any total batch size.
//   - The heterogeneous gradient-noise-scale estimator (Theorem 4.1).
//   - A simulated heterogeneous GPU substrate reproducing the paper's
//     evaluation clusters, and the five training systems compared in the
//     paper: Cannikin, AdaptDL, LB-BSP, PyTorch DDP, and HetPipe.
//   - A real (MLP-scale) neural-network engine with batch-weighted ring
//     all-reduce for gradient-level validation.
//
// Train runs a full adaptive training job on a simulated cluster;
// SolveOptPerf and EstimateGNS expose the paper's core algorithms directly.
package cannikin

import (
	"context"
	"errors"
	"fmt"

	"cannikin/internal/chaos"
	"cannikin/internal/cluster"
	"cannikin/internal/gns"
	"cannikin/internal/gpu"
	"cannikin/internal/optperf"
	"cannikin/internal/rng"
	"cannikin/internal/trainer"
	"cannikin/internal/workload"
)

// Sentinel errors returned (wrapped) by Train, TrainContext, Schedule, and
// ScheduleContext; test with errors.Is.
var (
	// ErrUnknownSystem reports a SystemKind outside Systems().
	ErrUnknownSystem = errors.New("unknown system")
	// ErrBadCluster reports an invalid or inconsistent ClusterConfig.
	ErrBadCluster = errors.New("bad cluster config")
	// ErrBatchRange reports a FixedBatch the workload or system cannot run.
	ErrBatchRange = errors.New("batch size out of range")
	// ErrAudit reports a plan-audit failure in strict mode (an OptPerf
	// solution violated the paper's optimality invariants), or an invalid
	// audit configuration.
	ErrAudit = errors.New("audit failed")
)

// AuditLevel selects how OptPerf plans are verified during training.
type AuditLevel string

// Audit levels for TrainConfig.Audit.
const (
	// AuditNone disables plan auditing (the default).
	AuditNone AuditLevel = ""
	// AuditAdvisory checks every fresh plan against the OptPerf optimality
	// invariants and reports the outcomes in each EpochReport, but never
	// fails the run.
	AuditAdvisory AuditLevel = "advisory"
	// AuditStrict additionally aborts the run with ErrAudit on any
	// invariant violation.
	AuditStrict AuditLevel = "strict"
)

func (l AuditLevel) mode() (optperf.AuditMode, error) {
	switch l {
	case AuditNone:
		return optperf.AuditOff, nil
	case AuditAdvisory:
		return optperf.AuditAdvisory, nil
	case AuditStrict:
		return optperf.AuditStrict, nil
	default:
		return optperf.AuditOff, fmt.Errorf("cannikin: audit level %q: %w", string(l), ErrAudit)
	}
}

// SystemKind names a training system.
type SystemKind string

// Training systems available to Train.
const (
	SystemCannikin SystemKind = "cannikin"
	SystemAdaptDL  SystemKind = "adaptdl"
	SystemLBBSP    SystemKind = "lb-bsp"
	SystemDDP      SystemKind = "pytorch-ddp"
	SystemHetPipe  SystemKind = "hetpipe"
)

// Systems returns all available system kinds.
func Systems() []SystemKind {
	return []SystemKind{SystemCannikin, SystemAdaptDL, SystemLBBSP, SystemDDP, SystemHetPipe}
}

// ClusterConfig selects or assembles a simulated cluster.
type ClusterConfig struct {
	// Preset picks one of the paper's testbeds: "a" (3 mixed workstation
	// GPUs), "b" (16 datacenter GPUs), or "c" (16 identical GPUs with
	// sharing-induced heterogeneity). Leave empty to build a custom
	// cluster from Models.
	Preset string
	// Models lists GPU catalog keys for a custom cluster (see GPUModels).
	Models []string
	// CPUSpeeds optionally sets per-node relative host-CPU speeds for a
	// custom cluster (1.0 = reference).
	CPUSpeeds []float64
	// ComputeShares optionally throttles each custom node to a fraction of
	// its device (sharing-induced heterogeneity), in (0, 1].
	ComputeShares []float64
}

func (c ClusterConfig) build(src *rng.Source) (*cluster.Cluster, error) {
	if c.Preset != "" {
		if len(c.Models) > 0 {
			return nil, fmt.Errorf("cannikin: set either Preset or Models, not both: %w", ErrBadCluster)
		}
		cl, err := cluster.Preset(c.Preset, src)
		if err != nil {
			return nil, fmt.Errorf("cannikin: %v: %w", err, ErrBadCluster)
		}
		return cl, nil
	}
	if len(c.Models) == 0 {
		return nil, fmt.Errorf("cannikin: cluster config needs Preset or Models: %w", ErrBadCluster)
	}
	cl, err := cluster.FromModels("custom", c.Models, src)
	if err != nil {
		return nil, fmt.Errorf("cannikin: %v: %w", err, ErrBadCluster)
	}
	if c.CPUSpeeds != nil {
		if len(c.CPUSpeeds) != len(c.Models) {
			return nil, fmt.Errorf("cannikin: %d CPU speeds for %d nodes: %w", len(c.CPUSpeeds), len(c.Models), ErrBadCluster)
		}
		for i, s := range c.CPUSpeeds {
			if s <= 0 {
				return nil, fmt.Errorf("cannikin: node %d CPU speed %v: %w", i, s, ErrBadCluster)
			}
			cl.Devices[i].CPUSpeed = s
		}
	}
	if c.ComputeShares != nil {
		if len(c.ComputeShares) != len(c.Models) {
			return nil, fmt.Errorf("cannikin: %d compute shares for %d nodes: %w", len(c.ComputeShares), len(c.Models), ErrBadCluster)
		}
		for i, s := range c.ComputeShares {
			if err := cl.Devices[i].SetSharing(s, s/2+0.5); err != nil {
				return nil, fmt.Errorf("cannikin: %v: %w", err, ErrBadCluster)
			}
		}
	}
	return cl, nil
}

// ChaosKind names a dynamic-heterogeneity perturbation type.
type ChaosKind string

// Perturbation kinds for ChaosEvent and ChaosEventRecord.
const (
	// ChaosComputeShare sets a node's compute share to Value (absolute
	// fraction in (0, 1]) — a co-located tenant arriving or leaving.
	ChaosComputeShare = ChaosKind(chaos.KindComputeShare)
	// ChaosBandwidth multiplies a node's ring link bandwidth by Value (> 0).
	ChaosBandwidth = ChaosKind(chaos.KindBandwidth)
	// ChaosStraggler multiplies a node's compute share by Value (in (0, 1))
	// for Duration epochs (default 1), then restores it.
	ChaosStraggler = ChaosKind(chaos.KindStraggler)
)

// ChaosEvent is one scheduled perturbation of the simulated cluster.
type ChaosEvent struct {
	// Epoch is when the event takes effect (before that epoch is planned).
	Epoch int
	// Node is the affected node index.
	Node int
	Kind ChaosKind
	// Value is interpreted per Kind; see the ChaosKind constants.
	Value float64
	// Duration, when positive, automatically reverts the event after that
	// many epochs.
	Duration int
}

// ChaosConfig enables dynamic-heterogeneity injection during training. The
// zero value disables it.
type ChaosConfig struct {
	// Events are explicit scheduled perturbations.
	Events []ChaosEvent
	// Churn, when positive, additionally generates a seeded random event
	// schedule with that per-epoch probability (in (0, 1]). Generation is
	// deterministic in the job Seed.
	Churn float64
	// FirstEpoch and Horizon bound the generated events (defaults 4 and 32).
	FirstEpoch int
	Horizon    int
}

func (c ChaosConfig) enabled() bool { return len(c.Events) > 0 || c.Churn > 0 }

// schedule lowers the public config to an internal, validated schedule.
func (c ChaosConfig) schedule(nodes int, seed uint64) (chaos.Schedule, error) {
	var events []chaos.Event
	for _, e := range c.Events {
		events = append(events, chaos.Event{
			Epoch: e.Epoch, Node: e.Node, Kind: chaos.Kind(e.Kind),
			Value: e.Value, Duration: e.Duration,
		})
	}
	if c.Churn > 0 {
		gen, err := chaos.Generate(chaos.Profile{
			Intensity:  c.Churn,
			FirstEpoch: c.FirstEpoch,
			Horizon:    c.Horizon,
		}, nodes, rng.New(seed))
		if err != nil {
			return chaos.Schedule{}, fmt.Errorf("cannikin: %w", err)
		}
		events = append(events, gen.Events...)
	}
	s := chaos.Schedule{Events: events}
	if err := s.Validate(nodes); err != nil {
		return chaos.Schedule{}, fmt.Errorf("cannikin: %w", err)
	}
	return s, nil
}

// TrainConfig configures one training job.
type TrainConfig struct {
	Cluster ClusterConfig
	// Workload names a Table 5 task (see Workloads).
	Workload string
	System   SystemKind
	Seed     uint64
	// MaxEpochs caps the run (0 = default safety limit).
	MaxEpochs int
	// FixedBatch pins the total batch size for systems that support it
	// (Cannikin, LB-BSP, DDP, HetPipe); 0 keeps each system's default
	// behaviour.
	FixedBatch int
	// Chaos injects dynamic-heterogeneity events mid-run.
	Chaos ChaosConfig
	// Audit verifies every fresh OptPerf plan against the paper's
	// optimality invariants (Cannikin system only; see AuditLevel).
	Audit AuditLevel
	// OnEpoch, when set, streams each completed epoch's report in order.
	// Returning an error aborts the run with that error wrapped.
	OnEpoch func(EpochReport) error
}

// ChaosEventRecord is one perturbation that took effect during a run. It
// carries both vocabularies of the unified event model: chaos kinds
// (simulated-cluster perturbations, applied at epoch boundaries) and
// fault kinds (live-runtime fault injection, applied at step boundaries —
// see the Fault* constants).
type ChaosEventRecord struct {
	// Epoch is the epoch boundary a chaos event fired at; Step the global
	// training step a fault event fired at (zero for the other vocabulary).
	Epoch int
	Step  int
	Node  int
	Kind  ChaosKind
	// Value is the applied value: the new compute share, the new link
	// bandwidth in GB/s, the straggler share multiplier — or, for fault
	// kinds, the injected delay in seconds / the dropped-send count.
	Value float64
	// Revert marks the automatic restoration of a transient chaos event.
	Revert bool
}

// EpochReport summarizes one training epoch.
type EpochReport struct {
	Epoch        int
	TotalBatch   int
	LocalBatches []int
	AvgBatchTime float64
	TrainTime    float64
	Overhead     float64
	// ElapsedTime is the cumulative simulated time at epoch end.
	ElapsedTime float64
	Metric      float64
	Progress    float64
	// Events lists the chaos perturbations applied at this epoch's boundary.
	Events []ChaosEventRecord
	// Reprofiled counts the nodes this epoch's plan probed to re-learn a
	// drifted performance model (Cannikin only).
	Reprofiled int
	// Audit summarizes this epoch's plan-audit outcome (nil unless
	// TrainConfig.Audit is enabled).
	Audit *AuditSummary
}

// AuditSummary is one epoch's plan-audit outcome.
type AuditSummary struct {
	// Plans is how many freshly solved plans were audited this epoch
	// (cache-served plans were audited when first solved).
	Plans int
	// Violations is the total invariant violations across those plans.
	Violations int
	// MaxResidual is the worst residual/tolerance ratio observed (≤ 1 means
	// everything was within tolerance).
	MaxResidual float64
	// ModelFitError is the learner's worst per-node relative fit residual —
	// the confidence context for reading audit residuals (0 on bootstrap
	// epochs, before a model exists).
	ModelFitError float64
	// Failures describes the violated invariants, one line each (capped).
	Failures []string
}

// Report is a completed training run.
type Report struct {
	System     string
	Workload   string
	Cluster    string
	MetricName string
	Epochs     []EpochReport
	Converged  bool
	// ConvergeTime is the simulated seconds to the target metric.
	ConvergeTime float64
	TotalTime    float64
	// OverheadFraction is scheduling overhead / total time.
	OverheadFraction float64
	// AuditedPlans and AuditViolations total the per-epoch audit outcomes
	// (zero unless TrainConfig.Audit was enabled).
	AuditedPlans    int
	AuditViolations int
}

// Train runs a full training job on a simulated heterogeneous cluster. It
// is TrainContext with a background context.
func Train(cfg TrainConfig) (*Report, error) {
	return TrainContext(context.Background(), cfg)
}

// TrainContext runs a full training job, checking ctx at every epoch
// boundary: a canceled context aborts the run with the context's error
// wrapped (test with errors.Is).
func TrainContext(ctx context.Context, cfg TrainConfig) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	src := rng.New(cfg.Seed)
	cl, err := cfg.Cluster.build(src)
	if err != nil {
		return nil, err
	}
	w, err := workload.Get(cfg.Workload)
	if err != nil {
		return nil, err
	}
	if err := validateFixedBatch(cfg.FixedBatch, w, cl.N()); err != nil {
		return nil, err
	}
	auditMode, err := cfg.Audit.mode()
	if err != nil {
		return nil, err
	}
	if auditMode != optperf.AuditOff && cfg.System != SystemCannikin {
		return nil, fmt.Errorf("cannikin: system %q does not solve OptPerf plans to audit: %w", cfg.System, ErrAudit)
	}
	var sched chaos.Schedule
	if cfg.Chaos.enabled() {
		if sched, err = cfg.Chaos.schedule(cl.N(), cfg.Seed); err != nil {
			return nil, err
		}
	}
	var hook func(trainer.EpochStats) error
	if cfg.OnEpoch != nil {
		hook = func(s trainer.EpochStats) error { return cfg.OnEpoch(toEpochReport(s)) }
	}
	var res *trainer.Result
	if cfg.System == SystemHetPipe {
		env, err := trainer.NewEnv(cl, w)
		if err != nil {
			return nil, err
		}
		hp := trainer.NewHetPipe()
		if cfg.FixedBatch > 0 {
			hp.FixedBatch = cfg.FixedBatch
		}
		res, err = hp.RunContext(ctx, env, trainer.PipeOpts{
			Seed:      cfg.Seed,
			MaxEpochs: cfg.MaxEpochs,
			Chaos:     sched,
			OnEpoch:   hook,
		})
		if err != nil {
			return nil, err
		}
	} else {
		sys, err := buildSystem(cfg.System, cfg.FixedBatch, auditMode)
		if err != nil {
			return nil, err
		}
		res, err = trainer.RunContext(ctx, trainer.Config{
			Cluster:   cl,
			Workload:  w,
			System:    sys,
			Seed:      cfg.Seed,
			MaxEpochs: cfg.MaxEpochs,
			Chaos:     sched,
			OnEpoch:   hook,
		})
		if err != nil {
			if errors.Is(err, optperf.ErrAuditFailed) {
				return nil, fmt.Errorf("cannikin: %w: %w", ErrAudit, err)
			}
			return nil, err
		}
	}
	return convertResult(res, w), nil
}

// validateFixedBatch rejects a pinned total batch the workload or cluster
// cannot run before any simulation time is spent.
func validateFixedBatch(b int, w workload.Workload, nodes int) error {
	if b == 0 {
		return nil
	}
	if b < 0 {
		return fmt.Errorf("cannikin: fixed batch %d: %w", b, ErrBatchRange)
	}
	if b > w.MaxBatch {
		return fmt.Errorf("cannikin: fixed batch %d above workload %s max %d: %w", b, w.Name, w.MaxBatch, ErrBatchRange)
	}
	if b < nodes {
		return fmt.Errorf("cannikin: fixed batch %d below cluster size %d: %w", b, nodes, ErrBatchRange)
	}
	return nil
}

func buildSystem(kind SystemKind, fixedBatch int, audit optperf.AuditMode) (trainer.System, error) {
	switch kind {
	case SystemCannikin:
		s := trainer.NewCannikin()
		s.FixedBatch = fixedBatch
		s.Audit = audit
		return s, nil
	case SystemAdaptDL:
		if fixedBatch > 0 {
			return nil, fmt.Errorf("cannikin: AdaptDL does not support a fixed batch: %w", ErrBatchRange)
		}
		return trainer.NewAdaptDL(), nil
	case SystemLBBSP:
		s := trainer.NewLBBSP()
		s.FixedBatch = fixedBatch
		return s, nil
	case SystemDDP:
		s := trainer.NewDDP()
		s.FixedBatch = fixedBatch
		return s, nil
	default:
		return nil, fmt.Errorf("cannikin: system %q: %w", kind, ErrUnknownSystem)
	}
}

func toEpochReport(e trainer.EpochStats) EpochReport {
	r := EpochReport{
		Epoch:        e.Epoch,
		TotalBatch:   e.TotalBatch,
		LocalBatches: append([]int(nil), e.Local...),
		AvgBatchTime: e.AvgBatchTime,
		TrainTime:    e.TrainTime,
		Overhead:     e.Overhead,
		ElapsedTime:  e.SimTimeEnd,
		Metric:       e.Metric,
		Progress:     e.Progress,
		Reprofiled:   e.Reprofiled,
	}
	for _, a := range e.Events {
		r.Events = append(r.Events, ChaosEventRecord{
			Epoch:  a.Epoch,
			Node:   a.Node,
			Kind:   ChaosKind(a.Kind),
			Value:  a.Value,
			Revert: a.Revert,
		})
	}
	if e.Audit != nil {
		s := &AuditSummary{
			Plans:         e.Audit.Summary.Plans,
			Violations:    e.Audit.Summary.Violations,
			MaxResidual:   e.Audit.Summary.MaxViolationRatio,
			ModelFitError: e.Audit.ModelFitError,
		}
		for _, rep := range e.Audit.Summary.Failures {
			for _, v := range rep.Violations {
				s.Failures = append(s.Failures, v.String())
			}
		}
		r.Audit = s
	}
	return r
}

func convertResult(res *trainer.Result, w workload.Workload) *Report {
	out := &Report{
		System:       res.System,
		Workload:     res.Workload,
		Cluster:      res.Cluster,
		MetricName:   w.Convergence.MetricName,
		Converged:    res.Converged,
		ConvergeTime: res.ConvergeTime,
		TotalTime:    res.TotalTime,
	}
	if res.TotalTime > 0 {
		out.OverheadFraction = res.TotalOverhead / res.TotalTime
	}
	for _, e := range res.Epochs {
		r := toEpochReport(e)
		if r.Audit != nil {
			out.AuditedPlans += r.Audit.Plans
			out.AuditViolations += r.Audit.Violations
		}
		out.Epochs = append(out.Epochs, r)
	}
	return out
}

// WorkloadInfo describes one Table 5 task.
type WorkloadInfo struct {
	Name, Task, Dataset, Model string
	Params                     float64
	Optimizer, LRScaler        string
	InitBatch, MaxBatch        int
	DatasetSize                int
	TargetMetric               string
	TargetValue                float64
}

// Workloads lists the five evaluation workloads.
func Workloads() []WorkloadInfo {
	var out []WorkloadInfo
	for _, w := range workload.All() {
		out = append(out, WorkloadInfo{
			Name: w.Name, Task: w.Task, Dataset: w.Dataset, Model: w.ModelName,
			Params: w.Params, Optimizer: string(w.Optimizer), LRScaler: string(w.Scaler),
			InitBatch: w.InitBatch, MaxBatch: w.MaxBatch, DatasetSize: w.DatasetSize,
			TargetMetric: w.Convergence.MetricName, TargetValue: w.Convergence.MetricTarget,
		})
	}
	return out
}

// GPUInfo describes one catalog GPU model.
type GPUInfo struct {
	Key, Name, Arch string
	Year, CUDACores int
	MemoryGB        float64
	FP16TFLOPS      float64
}

// GPUModels lists the device catalog (paper Table 1 plus the evaluation
// GPUs).
func GPUModels() []GPUInfo {
	var out []GPUInfo
	for _, key := range gpu.ModelNames() {
		m := gpu.Catalog[key]
		out = append(out, GPUInfo{
			Key: key, Name: m.Name, Arch: m.Arch, Year: m.Year,
			CUDACores: m.CUDACores, MemoryGB: m.MemoryGB, FP16TFLOPS: m.FP16TFLOPS,
		})
	}
	return out
}

// NodePerf is one node's learned compute-time model: a(b) = Q·b + S is the
// non-backprop time, P(b) = K·b + M the backpropagation time.
type NodePerf struct {
	Q, S, K, M float64
	// MaxBatch caps the node's local batch size (0 = unlimited).
	MaxBatch int
}

// PerfModel is a cluster performance model for the OptPerf solver.
type PerfModel struct {
	Nodes []NodePerf
	// Gamma is the overlap ratio; To and Tu split the per-batch gradient
	// synchronization time (overlappable buckets, last bucket).
	Gamma, To, Tu float64
}

// Allocation is a solved OptPerf plan.
type Allocation struct {
	TotalBatch int
	// LocalBatches are the optimal per-node batch sizes.
	LocalBatches []int
	// Ratios are LocalBatches / TotalBatch (the paper's r_opt).
	Ratios []float64
	// Time is the predicted optimal batch processing time (OptPerf).
	Time float64
	// ComputeBound flags the nodes whose bottleneck is computation.
	ComputeBound []bool
}

// SolveOptPerf runs Algorithm 1: it returns the optimal batch processing
// time and local batch assignment for the given total batch size.
func SolveOptPerf(m PerfModel, totalBatch int) (Allocation, error) {
	cm := optperf.ClusterModel{
		Nodes: make([]optperf.NodeModel, len(m.Nodes)),
		Gamma: m.Gamma,
		To:    m.To,
		Tu:    m.Tu,
	}
	for i, n := range m.Nodes {
		cm.Nodes[i] = optperf.NodeModel{Q: n.Q, S: n.S, K: n.K, M: n.M, MaxBatch: n.MaxBatch}
	}
	plan, err := optperf.Solve(cm, totalBatch)
	if err != nil {
		return Allocation{}, err
	}
	out := Allocation{
		TotalBatch:   plan.TotalBatch,
		LocalBatches: plan.Batches,
		Ratios:       plan.Ratios,
		Time:         plan.Time,
		ComputeBound: make([]bool, len(plan.States)),
	}
	for i, s := range plan.States {
		out.ComputeBound[i] = s == optperf.ComputeBound
	}
	return out, nil
}

// GNSEstimate is a heterogeneous gradient-noise-scale estimate.
type GNSEstimate struct {
	// GradSq estimates |G|², TraceVar estimates tr(Σ), Noise their ratio.
	GradSq, TraceVar, Noise float64
}

// EstimateGNS combines per-node gradient norms into the minimum-variance
// unbiased GNS estimate of Theorem 4.1. batches are the local batch sizes,
// localSqNorms the |g_i|², and globalSqNorm the |g|² of the batch-weighted
// aggregate gradient.
func EstimateGNS(batches []int, localSqNorms []float64, globalSqNorm float64) (GNSEstimate, error) {
	est, err := gns.EstimateOptimal(gns.Sample{
		Batches:      batches,
		LocalSqNorms: localSqNorms,
		GlobalSqNorm: globalSqNorm,
	})
	if err != nil {
		return GNSEstimate{}, err
	}
	return GNSEstimate{GradSq: est.GradSq, TraceVar: est.TraceVar, Noise: est.Noise}, nil
}
