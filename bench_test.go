// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark runs the
// corresponding experiment end-to-end and reports the headline quantities
// as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. EXPERIMENTS.md records the paper-vs-measured
// comparison produced by these harnesses (via cmd/experiments).
package cannikin

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cannikin/internal/allreduce"
	"cannikin/internal/experiments"
	"cannikin/internal/gns"
	"cannikin/internal/optperf"
	"cannikin/internal/rng"
)

var benchOpt = experiments.Options{Seed: 1, Quick: true}

func BenchmarkFig5BatchSizeTrajectory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig5(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		_, finalBatch := fig.Get("global").Last()
		b.ReportMetric(finalBatch, "final-global-batch")
	}
}

func BenchmarkFig6ConvergenceComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig6(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		canT, _ := figs[2].Get("cannikin").Last()
		adlT, _ := figs[2].Get("adaptdl").Last()
		b.ReportMetric(adlT/canT, "speedup-vs-adaptdl")
	}
}

func BenchmarkFig7ConvergenceProcess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig7(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		for _, fig := range figs {
			canT, _ := fig.Get("cannikin").Last()
			ddpT, _ := fig.Get("pytorch-ddp").Last()
			b.ReportMetric(ddpT/canT, "speedup-vs-ddp")
		}
	}
}

func BenchmarkFig8NormalizedConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig8(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		// Report the worst-case DDP slowdown across workloads.
		maxDDP := 0.0
		for _, row := range tab.Rows {
			var v float64
			if _, err := fmt.Sscan(row[len(row)-1], &v); err != nil {
				b.Fatal(err)
			}
			if v > maxDDP {
				maxDDP = v
			}
		}
		b.ReportMetric(maxDDP, "max-ddp-slowdown")
	}
}

func BenchmarkFig9FixedBatchApproach(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig9(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		can := fig.Get("cannikin")
		lbb := fig.Get("lb-bsp")
		// Epochs LB-BSP needs to get within 5% of Cannikin's final time.
		target := can.Y[can.Len()-1] * 1.05
		epochs := float64(lbb.Len())
		for j := 0; j < lbb.Len(); j++ {
			if lbb.Y[j] <= target {
				epochs = float64(j)
				break
			}
		}
		b.ReportMetric(epochs, "lbbsp-epochs-to-optperf")
	}
}

func BenchmarkFig10BatchProcessingTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig10(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		// Report the largest measured DDP-vs-OptPerf gap across all
		// workloads and batch sizes.
		maxGap := 0.0
		for _, fig := range figs {
			sOpt, sDDP := fig.Get("optperf"), fig.Get("pytorch-ddp")
			for j := range sOpt.X {
				if gap := sDDP.Y[j]/sOpt.Y[j] - 1; gap > maxGap {
					maxGap = gap
				}
			}
		}
		b.ReportMetric(100*maxGap, "max-ddp-gap-pct")
	}
}

func BenchmarkTable6Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table6(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, row := range tab.Rows {
			var overall float64
			if _, err := fmt.Sscan(row[3], &overall); err != nil {
				b.Fatal(err)
			}
			if overall > worst {
				worst = overall
			}
		}
		b.ReportMetric(worst, "worst-overall-overhead-pct")
	}
}

func BenchmarkPredictionError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.PredictionError(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		var maxIVW, maxPlain float64
		for _, row := range tab.Rows {
			var ivw, plain float64
			if _, err := fmt.Sscan(row[1], &ivw); err != nil {
				b.Fatal(err)
			}
			if _, err := fmt.Sscan(row[2], &plain); err != nil {
				b.Fatal(err)
			}
			if ivw > maxIVW {
				maxIVW = ivw
			}
			if plain > maxPlain {
				maxPlain = plain
			}
		}
		b.ReportMetric(maxIVW, "max-err-ivw-pct")
		b.ReportMetric(maxPlain, "max-err-plain-pct")
	}
}

func BenchmarkSharingHeterogeneity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Sharing(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		var speedupC float64
		for _, row := range tab.Rows {
			if row[0] == "cluster-c" {
				if _, err := fmt.Sscan(row[3], &speedupC); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(speedupC, "clusterC-speedup")
	}
}

func BenchmarkAblationGNS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGNS(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWarmStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationWarmStart(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationOverlap(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.AblationBandwidth(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		s := fig.Get("slowdown")
		b.ReportMetric(s.Y[s.Len()-1], "even-split-slowdown-at-40GBps")
	}
}

func BenchmarkDynamicResources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, eventEpoch, err := experiments.Dynamic(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		can := fig.Get("cannikin")
		// Epochs from the event until Cannikin is within 10% of its final
		// post-event batch time.
		final := can.Y[can.Len()-1]
		recovery := float64(can.Len() - eventEpoch)
		for j := eventEpoch; j < can.Len(); j++ {
			if can.Y[j] <= final*1.10 {
				recovery = float64(j - eventEpoch)
				break
			}
		}
		b.ReportMetric(recovery, "cannikin-recovery-epochs")
	}
}

func BenchmarkSchedulerPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Scheduler(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		var het, hom float64
		for _, row := range tab.Rows {
			var v float64
			if _, err := fmt.Sscan(row[2], &v); err != nil {
				b.Fatal(err)
			}
			if row[0] == "homogeneous-only" {
				hom = v
			} else {
				het = v
			}
		}
		b.ReportMetric(hom/het, "makespan-improvement")
	}
}

// --- Microbenchmarks for the core algorithms -------------------------------

// BenchmarkOptPerfSolve16 measures Algorithm 1 on a 16-node mixed cluster.
func BenchmarkOptPerfSolve16(b *testing.B) {
	src := rng.New(1)
	nodes := make([]optperf.NodeModel, 16)
	for i := range nodes {
		speed := 1.0 + 3*src.Float64()
		nodes[i] = optperf.NodeModel{
			Q: 0.0002 * speed, S: 0.003,
			K: 0.0004 * speed, M: 0.002,
		}
	}
	model := optperf.ClusterModel{Nodes: nodes, Gamma: 0.2, To: 0.01, Tu: 0.004}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optperf.Solve(model, 512); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGNSEstimate16 measures the Theorem 4.1 estimator at cluster-B
// scale.
func BenchmarkGNSEstimate16(b *testing.B) {
	batches := make([]int, 16)
	norms := make([]float64, 16)
	for i := range batches {
		batches[i] = 8 + 4*i
		norms[i] = 10 + 100.0/float64(batches[i])
	}
	sample := gns.Sample{Batches: batches, LocalSqNorms: norms, GlobalSqNorm: 10.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gns.EstimateOptimal(sample); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainCannikinClusterB measures a full adaptive training run.
func BenchmarkTrainCannikinClusterB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Train(TrainConfig{
			Cluster:  ClusterConfig{Preset: "b"},
			Workload: "cifar10",
			System:   SystemCannikin,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.ConvergeTime, "simulated-seconds")
	}
}

// --- Live execution runtime benchmarks -------------------------------------

// BenchmarkAllReduce measures the collective across worker counts, gradient
// sizes, and algorithms. Sub-benchmark names are n<N>/dim<D>/<algorithm>;
// every algorithm runs at the latency-bound dim=1024 (where hd's log-round
// schedule should win), while the bandwidth-bound dims compare ring against
// the chunk-pipelined ring and the selector's auto choice — hd's concurrent
// large-payload path is not a contender there and is skipped to keep the
// sweep's wall-clock bounded.
func BenchmarkAllReduce(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		for _, dim := range []int{1 << 10, 1 << 16, 1 << 20} {
			algos := []allreduce.Algorithm{allreduce.AlgoRing, allreduce.AlgoHD, allreduce.AlgoPipeline, allreduce.AlgoAuto}
			if dim > 1<<10 {
				algos = []allreduce.Algorithm{allreduce.AlgoRing, allreduce.AlgoPipeline, allreduce.AlgoAuto}
			}
			for _, alg := range algos {
				b.Run(fmt.Sprintf("n%d/dim%d/%s", n, dim, alg), func(b *testing.B) {
					vectors := make([][]float64, n)
					for i := range vectors {
						vectors[i] = make([]float64, dim)
						for j := range vectors[i] {
							vectors[i][j] = float64(i + j)
						}
					}
					weights := make([]float64, n)
					for i := range weights {
						weights[i] = 1 / float64(n)
					}
					b.SetBytes(int64(8 * dim))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := allreduce.AllReduceAlg(vectors, weights, alg); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// benchTCPRings builds an n-rank TCP ring over loopback: one transport
// per rank (dialed concurrently — the ring interlocks), each wrapped in
// its own Ring. Returns the rings, an aggregate wire-stats getter, and a
// teardown func.
func benchTCPRings(b *testing.B, n int, delay time.Duration) ([]*allreduce.Ring, func() allreduce.TCPStats, func()) {
	b.Helper()
	addrs, lns, err := allreduce.ReserveRingAddrs(n)
	if err != nil {
		b.Fatal(err)
	}
	trs := make([]*allreduce.TCPTransport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = allreduce.NewTCPTransport(allreduce.TCPConfig{
				Rank: r, Peers: addrs, Listener: lns[r], BatchDelay: delay,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			b.Fatalf("rank %d: %v", r, err)
		}
	}
	rings := make([]*allreduce.Ring, n)
	for r := range rings {
		if rings[r], err = allreduce.NewRingOver(trs[r]); err != nil {
			b.Fatal(err)
		}
	}
	stats := func() allreduce.TCPStats {
		var sum allreduce.TCPStats
		for _, tr := range trs {
			st := tr.Stats()
			sum.BytesSent += st.BytesSent
			sum.BytesReceived += st.BytesReceived
			sum.MessagesSent += st.MessagesSent
			sum.MessagesRecv += st.MessagesRecv
			sum.Batches += st.Batches
		}
		return sum
	}
	teardown := func() {
		for _, tr := range trs {
			tr.Close()
		}
	}
	return rings, stats, teardown
}

// BenchmarkRingTransport measures one bucketless reduce across the
// pluggable transports: the in-process channel ring (under each collective
// algorithm), TCP over loopback with batching off, and TCP with adaptive
// send-side batching. TCP rows additionally report the wire cost (bytes per
// ring hop) and the achieved coalescing factor (ring hops per network
// write).
func BenchmarkRingTransport(b *testing.B) {
	const n, dim = 4, 1 << 16
	run := func(b *testing.B, rings []*allreduce.Ring, opts allreduce.Options, stats func() allreduce.TCPStats) {
		segs := make([][]float64, n)
		for i := range segs {
			segs[i] = make([]float64, dim)
		}
		b.SetBytes(int64(8 * dim))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for r := range segs {
				for j := range segs[r] {
					segs[r][j] = float64(r + j)
				}
			}
			b.StartTimer()
			var wg sync.WaitGroup
			for r := 0; r < n; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					if err := rings[r].ReduceWith(r, segs[r], opts); err != nil {
						b.Error(err)
					}
				}(r)
			}
			wg.Wait()
		}
		b.StopTimer()
		if stats != nil {
			st := stats()
			if st.MessagesSent > 0 {
				b.ReportMetric(float64(st.BytesSent)/float64(st.MessagesSent), "bytes/hop")
				b.ReportMetric(st.MsgsPerBatch(), "msgs/batch")
			}
		}
	}
	chanRings := func(b *testing.B) []*allreduce.Ring {
		ring, err := allreduce.NewRing(n, 4)
		if err != nil {
			b.Fatal(err)
		}
		rings := make([]*allreduce.Ring, n)
		for r := range rings {
			rings[r] = ring
		}
		return rings
	}
	b.Run("chan", func(b *testing.B) {
		run(b, chanRings(b), allreduce.Options{}, nil)
	})
	b.Run("chan-hd", func(b *testing.B) {
		run(b, chanRings(b), allreduce.Options{Algorithm: allreduce.AlgoHD}, nil)
	})
	b.Run("chan-pipeline", func(b *testing.B) {
		run(b, chanRings(b), allreduce.Options{Algorithm: allreduce.AlgoPipeline}, nil)
	})
	b.Run("tcp", func(b *testing.B) {
		rings, stats, teardown := benchTCPRings(b, n, 0)
		defer teardown()
		run(b, rings, allreduce.Options{}, stats)
	})
	b.Run("tcp-batch", func(b *testing.B) {
		rings, stats, teardown := benchTCPRings(b, n, allreduce.BatchAuto)
		defer teardown()
		run(b, rings, allreduce.Options{}, stats)
	})
}

// BenchmarkElasticJoin prices a hot-join. The `join` leg trains w workers
// for one epoch, admits worker w+1 at the epoch boundary (probe passes,
// bitwise checkpoint verification, ring rebuild, Eq. 9 rescale), and
// trains one grown epoch. The `split` leg performs the identical training
// arithmetic as two static runs handed over in-process by checkpoint —
// prefix at w workers, continuation at w+1 from the prefix's final
// weights+velocity under the join's resume label — with no membership
// machinery at all. join/split is therefore the elasticity tax;
// scripts/bench.sh records both legs into BENCH_runtime.json's
// join_latency table and scripts/benchcheck caps the ratio.
func BenchmarkElasticJoin(b *testing.B) {
	for _, tc := range []struct {
		name    string
		batches []int
		join    int
	}{
		{"w2to3", []int{16, 16}, 16},
		{"w4to5", []int{8, 8, 8, 8}, 8},
	} {
		base := MLPConfig{
			Hidden:  []int{128, 64},
			Dim:     32,
			Classes: 8,
			Samples: 2000,
			Epochs:  2,
			Seed:    1,
			Backend: "live",
		}
		b.Run(tc.name+"/join", func(b *testing.B) {
			cfg := base
			cfg.LocalBatches = tc.batches
			cfg.Joins = []JoinSpec{{Epoch: 1, Batch: tc.join}}
			for i := 0; i < b.N; i++ {
				res, err := TrainMLP(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Joins) != 1 {
					b.Fatalf("got %d join records, want 1", len(res.Joins))
				}
			}
		})
		b.Run(tc.name+"/split", func(b *testing.B) {
			pre := base
			pre.LocalBatches = tc.batches
			pre.Epochs = 1
			cont := base
			cont.LocalBatches = append(append([]int{}, tc.batches...), tc.join)
			cont.Epochs = 1
			cont.Resume = "join-1"
			for i := 0; i < b.N; i++ {
				preRes, err := TrainMLP(pre)
				if err != nil {
					b.Fatal(err)
				}
				cont.InitWeights = preRes.FinalWeights
				cont.InitVelocity = preRes.FinalVelocity
				if _, err := TrainMLP(cont); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainMLPLiveVsSequential runs the identical training job on the
// sequential reference and the live concurrent engine at increasing worker
// counts. Both produce bitwise-identical weights; the ratio of their times
// is the execution-model speedup (expect live to win at >=4 workers on a
// multicore host; on a single core the engines are near parity).
func BenchmarkTrainMLPLiveVsSequential(b *testing.B) {
	configs := [][]int{{64}, {32, 32}, {16, 16, 16, 16}, {8, 8, 8, 8, 8, 8, 8, 8}}
	for _, batches := range configs {
		for _, backend := range []string{"sim", "live"} {
			b.Run(fmt.Sprintf("w%d/%s", len(batches), backend), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := TrainMLP(MLPConfig{
						LocalBatches: batches,
						Hidden:       []int{128, 64},
						Dim:          32,
						Classes:      8,
						Samples:      2000,
						Epochs:       2,
						Seed:         1,
						Backend:      backend,
						// BucketBytes 0: exercise the adaptive bucket rule the
						// runtime ships with, so the recorded live-vs-sim rows
						// measure the default configuration users get.
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.FinalAccuracy, "final-accuracy")
				}
			})
		}
	}
}
