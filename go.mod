module cannikin

go 1.23
