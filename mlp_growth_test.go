package cannikin

import (
	"testing"
)

func TestTrainMLPBatchGrowth(t *testing.T) {
	res, err := TrainMLP(MLPConfig{
		LocalBatches: []int{24, 12, 8},
		Epochs:       12,
		GrowthEpoch:  6,
		Scaler:       "adascale",
		Seed:         21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BatchSchedule) != 12 || len(res.LRSchedule) != 12 {
		t.Fatalf("schedules missing: %d/%d", len(res.BatchSchedule), len(res.LRSchedule))
	}
	if res.BatchSchedule[5] != 44 || res.BatchSchedule[6] != 88 {
		t.Fatalf("batch did not double at growth epoch: %v", res.BatchSchedule)
	}
	// AdaScale: the learning rate changes at growth and its gain stays in
	// (1, 2] (the doubling bound).
	pre, post := res.LRSchedule[5], res.LRSchedule[6]
	if post <= pre || post > 2*pre+1e-12 {
		t.Fatalf("adascale LR out of (lr, 2lr]: %v -> %v", pre, post)
	}
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("final accuracy %v", res.FinalAccuracy)
	}
}

func TestTrainMLPGrowthScalers(t *testing.T) {
	run := func(scaler string) *MLPResult {
		res, err := TrainMLP(MLPConfig{
			LocalBatches: []int{16, 16},
			Epochs:       8,
			GrowthEpoch:  4,
			Scaler:       scaler,
			Seed:         22,
		})
		if err != nil {
			t.Fatalf("%q: %v", scaler, err)
		}
		return res
	}
	sqrt := run("sqrt")
	linear := run("linear")
	keep := run("")
	// sqrt gain = sqrt(2), linear = 2, none = 1.
	base := keep.LRSchedule[4]
	if !(linear.LRSchedule[4] > sqrt.LRSchedule[4] && sqrt.LRSchedule[4] > base) {
		t.Fatalf("scaler ordering wrong: linear %v sqrt %v none %v",
			linear.LRSchedule[4], sqrt.LRSchedule[4], base)
	}
	if _, err := TrainMLP(MLPConfig{LocalBatches: []int{8}, Scaler: "nope"}); err == nil {
		t.Fatal("unknown scaler accepted")
	}
}

func TestTrainMLPGrowthReducesSteps(t *testing.T) {
	fixed, err := TrainMLP(MLPConfig{LocalBatches: []int{16, 16}, Epochs: 10, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := TrainMLP(MLPConfig{
		LocalBatches: []int{16, 16}, Epochs: 10, GrowthEpoch: 3, Scaler: "sqrt", Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if grown.Steps >= fixed.Steps {
		t.Fatalf("growth did not reduce steps: %d vs %d", grown.Steps, fixed.Steps)
	}
	if grown.FinalAccuracy < fixed.FinalAccuracy-0.05 {
		t.Fatalf("growth hurt accuracy: %v vs %v", grown.FinalAccuracy, fixed.FinalAccuracy)
	}
}
