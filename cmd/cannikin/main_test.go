package main

import (
	"strings"
	"testing"
	"time"

	"cannikin"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ResNet-50", "ImageNet", "BERT", "NeuMF", "H100", "FP16 TFLOPS", "adascale"} {
		if !strings.Contains(out, want) {
			t.Fatalf("catalog output missing %q", want)
		}
	}
}

func TestRunTrainsAndPrintsTrace(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-cluster", "a", "-workload", "cifar10", "-system", "cannikin", "-epochs", "5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"epoch", "local batches", "top1-acc", "cannikin on cluster-a"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-cluster", "a", "-epochs", "3", "-csv"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "epoch,batch,local batches") {
		t.Fatalf("CSV header missing:\n%s", sb.String())
	}
}

func TestRunCustomModels(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-models", "H100,P100", "-epochs", "3"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "custom") {
		t.Fatalf("custom cluster not reported:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-workload", "nope"}, &sb); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := run([]string{"-system", "nope"}, &sb); err == nil {
		t.Fatal("unknown system accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestIntsToString(t *testing.T) {
	if got := intsToString([]int{1, 2, 3}); got != "1/2/3" {
		t.Fatalf("intsToString = %q", got)
	}
}

func TestRunProgressStreams(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-cluster", "a", "-epochs", "4", "-progress"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"epoch   0", "epoch   3", "metric"} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress output missing %q:\n%s", want, out)
		}
	}
	// Streamed lines precede the final table.
	if strings.Index(out, "epoch   0") > strings.Index(out, "local batches") {
		t.Fatalf("progress lines should precede the trace table:\n%s", out)
	}
}

func TestRunChaosChurn(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-cluster", "a", "-workload", "imagenet", "-epochs", "20", "-chaos", "0.8", "-progress"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "chaos: node") {
		t.Fatalf("chaos events not streamed:\n%s", sb.String())
	}
	if err := run([]string{"-chaos", "1.5"}, &sb); err == nil {
		t.Fatal("chaos churn above 1 accepted")
	}
}

func TestEventsToString(t *testing.T) {
	if got := eventsToString(nil); got != "-" {
		t.Fatalf("eventsToString(nil) = %q", got)
	}
}

func TestRunAuditFlag(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-cluster", "a", "-workload", "cifar10", "-epochs", "5", "-audit", "strict"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"audit", "ok", "plans checked, 0 violations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("audited output missing %q:\n%s", want, out)
		}
	}
	// Without -audit the column must stay absent.
	sb.Reset()
	if err := run([]string{"-cluster", "a", "-epochs", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "plans checked") {
		t.Fatal("audit summary printed without -audit")
	}

	if err := run([]string{"-audit", "bogus", "-epochs", "2"}, &sb); err == nil {
		t.Fatal("bogus -audit level accepted")
	}
}

func TestAuditToString(t *testing.T) {
	if got := auditToString(nil); got != "-" {
		t.Fatalf("nil audit = %q", got)
	}
	ok := &cannikin.AuditSummary{Plans: 3}
	if got := auditToString(ok); got != "3 ok" {
		t.Fatalf("clean audit = %q", got)
	}
	bad := &cannikin.AuditSummary{Plans: 2, Violations: 1}
	if got := auditToString(bad); got != "1/2 FAIL" {
		t.Fatalf("failed audit = %q", got)
	}
}

func TestRunMLPLiveBackend(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-mlp", "-backend", "live", "-epochs", "2",
		"-mlp-batches", "16,8", "-bucket-bytes", "2048"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"live backend: 2 workers", "local batches 16/8",
		"overlap observed=true", "fitted model: gamma="} {
		if !strings.Contains(out, want) {
			t.Fatalf("MLP output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMLPSimBackend(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mlp", "-epochs", "2", "-mlp-batches", "8,4"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "sim backend: 2 workers") {
		t.Fatalf("MLP sim output:\n%s", out)
	}
	if strings.Contains(out, "measured:") {
		t.Fatalf("sim backend printed a measured profile:\n%s", out)
	}
}

func TestRunMLPBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mlp", "-mlp-batches", "8,zero"}, &sb); err == nil {
		t.Fatal("bad -mlp-batches accepted")
	}
	if err := run([]string{"-mlp", "-backend", "tpu"}, &sb); err == nil {
		t.Fatal("bad -backend accepted")
	}
}

func TestParseFaults(t *testing.T) {
	cfg, err := parseFaults("stall:0@3:40ms, kill:1@8 ,drop:2@5:3,delay:1@2:10ms", "optperf")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Replan != "optperf" || len(cfg.Events) != 4 {
		t.Fatalf("parsed %+v", cfg)
	}
	want := []cannikin.FaultEvent{
		{Step: 3, Worker: 0, Kind: cannikin.FaultStallCompute, Delay: 40 * time.Millisecond},
		{Step: 8, Worker: 1, Kind: cannikin.FaultKillWorker},
		{Step: 5, Worker: 2, Kind: cannikin.FaultDropMsg, Count: 3},
		{Step: 2, Worker: 1, Kind: cannikin.FaultDelayMsg, Delay: 10 * time.Millisecond},
	}
	for i, w := range want {
		if cfg.Events[i] != w {
			t.Fatalf("event %d = %+v, want %+v", i, cfg.Events[i], w)
		}
	}
	// Bare drop defaults to one dropped send.
	cfg, err = parseFaults("drop:0@1", "")
	if err != nil || cfg.Events[0].Count != 1 {
		t.Fatalf("bare drop: %+v, %v", cfg, err)
	}
	// Empty spec with a replan policy still configures fault tolerance.
	cfg, err = parseFaults("", "keep")
	if err != nil || cfg == nil || len(cfg.Events) != 0 {
		t.Fatalf("replan-only: %+v, %v", cfg, err)
	}
	if cfg, err := parseFaults("", ""); err != nil || cfg != nil {
		t.Fatalf("empty spec should disable faults: %+v, %v", cfg, err)
	}

	for _, bad := range []string{
		"kill",            // no target
		"kill:1",          // no step
		"kill:one@2",      // bad worker
		"kill:1@two",      // bad step
		"kill:1@2:5ms",    // kill takes no arg
		"stall:1@2",       // stall needs duration
		"stall:1@2:bogus", // bad duration
		"stall:1@2:-5ms",  // negative duration
		"drop:1@2:0",      // zero count
		"meteor:1@2",      // unknown kind
	} {
		if _, err := parseFaults(bad, ""); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	if _, err := parseFaults("", "wishful"); err != nil {
		t.Fatal("replan validation happens at TrainMLP, not parse time:", err)
	}
}

func TestRunMLPFaultEviction(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-mlp", "-backend", "live", "-epochs", "2",
		"-mlp-batches", "8,8,8", "-bucket-bytes", "1024",
		"-fault", "kill:1@6"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fault: step 6 worker 1 kill-worker",
		"eviction:", "evicted worker(s) 1", "resumed on 0/2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fault output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFaultRequiresMLP(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fault", "kill:0@1", "-epochs", "2"}, &sb); err == nil {
		t.Fatal("-fault without -mlp accepted")
	}
	if err := run([]string{"-mlp", "-fault", "bogus"}, &sb); err == nil {
		t.Fatal("bad -fault spec accepted")
	}
	if err := run([]string{"-mlp", "-backend", "live", "-fault", "kill:9@1"}, &sb); err == nil {
		t.Fatal("out-of-range fault worker accepted")
	}
}
