package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildWorkerBin compiles cannikin-worker into a temp dir so the
// coordinator test exercises the real multi-process path.
func buildWorkerBin(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cannikin-worker")
	cmd := exec.Command("go", "build", "-o", bin, "cannikin/cmd/cannikin-worker")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build cannikin-worker: %v\n%s", err, out)
	}
	return bin
}

// TestRunTCPCoordinator is the end-to-end multi-process check: the
// coordinator spawns three real cannikin-worker OS processes over
// loopback TCP, every rank's weight hash must agree, and the hash must
// match an in-process channel-transport reference run of the same seed.
func TestRunTCPCoordinator(t *testing.T) {
	bin := buildWorkerBin(t)
	var buf bytes.Buffer
	err := run([]string{
		"-mlp", "-transport", "tcp", "-mlp-batches", "6,4,2",
		"-epochs", "1", "-batch-delay", "auto", "-worker-bin", bin,
	}, &buf)
	if err != nil {
		t.Fatalf("coordinator: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"spawning 3 cannikin-worker processes over tcp",
		"worker rank 0 of 3",
		"identical on every rank and to the channel-transport reference",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTCPCoordinatorGuarded repeats the run with per-hop deadlines and
// no batching; determinism must hold at every transport setting.
func TestRunTCPCoordinatorGuarded(t *testing.T) {
	bin := buildWorkerBin(t)
	var buf bytes.Buffer
	err := run([]string{
		"-mlp", "-transport", "tcp", "-mlp-batches", "4,4",
		"-epochs", "1", "-guard", "-batch-delay", "0", "-worker-bin", bin,
	}, &buf)
	if err != nil {
		t.Fatalf("coordinator: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "identical on every rank") {
		t.Fatalf("determinism line missing:\n%s", buf.String())
	}
}

// TestRunTCPElasticJoin is the multi-process hot-join check: the
// coordinator decomposes the join schedule into two process generations (3
// workers, then a 4th joins mid-run), hands the weights+velocity checkpoint
// between them, and the final weights must be identical on every rank of
// the grown ring AND bitwise-equal to an in-process hot-join reference of
// the full schedule.
func TestRunTCPElasticJoin(t *testing.T) {
	bin := buildWorkerBin(t)
	var buf bytes.Buffer
	err := run([]string{
		"-mlp", "-transport", "tcp", "-mlp-batches", "6,4,2",
		"-epochs", "2", "-join", "1:4", "-seed", "5", "-worker-bin", bin,
	}, &buf)
	if err != nil {
		t.Fatalf("elastic coordinator: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"generation 1: 3 workers (batches 6/4/2), epochs [0, 1)",
		"generation 2: 4 workers (batches 6/4/2/4), epochs [1, 2), resume \"join-1\"",
		"spawning 4 cannikin-worker processes over tcp",
		"tcp elastic: 2 process generations grew 3 -> 4 workers",
		"identical on every rank and to the in-process hot-join reference",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTCPRejects pins the coordinator's argument validation.
func TestRunTCPRejects(t *testing.T) {
	cases := [][]string{
		{"-mlp", "-transport", "tcp", "-fault", "kill:0@2"},
		{"-mlp", "-transport", "tcp", "-backend", "live"},
		{"-mlp", "-transport", "tcp", "-batch-delay", "bogus"},
		{"-mlp", "-transport", "tcp", "-mlp-batches", "8,4", "-peers", "h1:1"},
		{"-transport", "tcp"}, // tcp without -mlp
		// Elastic limits of the generational coordinator (-worker-bin so
		// validation, not binary discovery, is what rejects).
		{"-mlp", "-transport", "tcp", "-epochs", "3", "-join", "1:4:optperf", "-worker-bin", "/bin/true"},
		{"-mlp", "-transport", "tcp", "-epochs", "3", "-join", "1:4", "-resume", "r", "-worker-bin", "/bin/true"},
		{"-mlp", "-transport", "tcp", "-epochs", "3", "-join", "2:4,2:2", "-worker-bin", "/bin/true"},
		{"-mlp", "-transport", "tcp", "-epochs", "3", "-join", "3:4", "-worker-bin", "/bin/true"},
		{"-mlp", "-transport", "tcp", "-autoscale-max", "4"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("accepted %v", args)
		}
	}
}
