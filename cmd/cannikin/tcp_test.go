package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildWorkerBin compiles cannikin-worker into a temp dir so the
// coordinator test exercises the real multi-process path.
func buildWorkerBin(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cannikin-worker")
	cmd := exec.Command("go", "build", "-o", bin, "cannikin/cmd/cannikin-worker")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build cannikin-worker: %v\n%s", err, out)
	}
	return bin
}

// TestRunTCPCoordinator is the end-to-end multi-process check: the
// coordinator spawns three real cannikin-worker OS processes over
// loopback TCP, every rank's weight hash must agree, and the hash must
// match an in-process channel-transport reference run of the same seed.
func TestRunTCPCoordinator(t *testing.T) {
	bin := buildWorkerBin(t)
	var buf bytes.Buffer
	err := run([]string{
		"-mlp", "-transport", "tcp", "-mlp-batches", "6,4,2",
		"-epochs", "1", "-batch-delay", "auto", "-worker-bin", bin,
	}, &buf)
	if err != nil {
		t.Fatalf("coordinator: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"spawning 3 cannikin-worker processes over tcp",
		"worker rank 0 of 3",
		"identical on every rank and to the channel-transport reference",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTCPCoordinatorGuarded repeats the run with per-hop deadlines and
// no batching; determinism must hold at every transport setting.
func TestRunTCPCoordinatorGuarded(t *testing.T) {
	bin := buildWorkerBin(t)
	var buf bytes.Buffer
	err := run([]string{
		"-mlp", "-transport", "tcp", "-mlp-batches", "4,4",
		"-epochs", "1", "-guard", "-batch-delay", "0", "-worker-bin", bin,
	}, &buf)
	if err != nil {
		t.Fatalf("coordinator: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "identical on every rank") {
		t.Fatalf("determinism line missing:\n%s", buf.String())
	}
}

// TestRunTCPRejects pins the coordinator's argument validation.
func TestRunTCPRejects(t *testing.T) {
	cases := [][]string{
		{"-mlp", "-transport", "tcp", "-fault", "kill:0@2"},
		{"-mlp", "-transport", "tcp", "-backend", "live"},
		{"-mlp", "-transport", "tcp", "-batch-delay", "bogus"},
		{"-mlp", "-transport", "tcp", "-mlp-batches", "8,4", "-peers", "h1:1"},
		{"-transport", "tcp"}, // tcp without -mlp
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("accepted %v", args)
		}
	}
}
