// Command cannikin trains one workload on a simulated heterogeneous
// cluster with a chosen training system and prints the per-epoch trace.
//
// Examples:
//
//	cannikin -cluster b -workload cifar10 -system cannikin
//	cannikin -cluster a -workload imagenet -system lb-bsp -batch 128 -epochs 16
//	cannikin -models H100,V100,P100 -workload cifar10 -system cannikin
//	cannikin -cluster a -workload imagenet -chaos 0.3 -progress
//	cannikin -mlp -backend live -mlp-batches 16,8,4 -epochs 5
//	cannikin -mlp -backend live -fault "stall:0@3:40ms,kill:1@8" -fault-replan optperf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"cannikin"

	"cannikin/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cannikin:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cannikin", flag.ContinueOnError)
	var (
		clusterName  = fs.String("cluster", "a", `cluster preset: "a", "b", or "c"`)
		models       = fs.String("models", "", "comma-separated GPU models for a custom cluster (overrides -cluster)")
		workload     = fs.String("workload", "cifar10", "workload name (see -list)")
		system       = fs.String("system", "cannikin", "training system: cannikin, adaptdl, lb-bsp, pytorch-ddp, hetpipe")
		seed         = fs.Uint64("seed", 1, "random seed")
		epochs       = fs.Int("epochs", 0, "epoch cap (0 = run to convergence)")
		batch        = fs.Int("batch", 0, "fixed total batch size (0 = adaptive/default)")
		list         = fs.Bool("list", false, "list workloads and GPU models, then exit")
		csv          = fs.Bool("csv", false, "emit the epoch trace as CSV")
		chaosChurn   = fs.Float64("chaos", 0, "per-epoch probability of a random resource perturbation, in (0, 1]")
		progress     = fs.Bool("progress", false, "stream each epoch as it completes")
		audit        = fs.String("audit", "", `verify OptPerf plans against the paper's optimality invariants: "advisory" or "strict"`)
		mlp          = fs.Bool("mlp", false, "train the real MLP across data-parallel workers instead of the simulated workload")
		backend      = fs.String("backend", "sim", `MLP execution engine: "sim" (sequential reference) or "live" (concurrent workers, overlapped ring all-reduce, wall-clock profile)`)
		mlpBatches   = fs.String("mlp-batches", "16,8,4", "comma-separated per-worker local batch sizes for -mlp")
		bucketBytes  = fs.Int("bucket-bytes", 0, "gradient bucket cap in bytes for -mlp (0 = DDP's 25 MB default)")
		kernelShards = fs.Int("kernel-shards", 0, "matmul kernel parallelism for -mlp: shard each matmul across this many goroutines (0 = leave serial; results are bitwise identical at any value)")
		fault        = fs.String("fault", "", `inject deterministic faults into the live MLP run: comma-separated events "kind:worker@step[:arg]" with kinds kill, stall (arg = duration), delay (arg = duration), drop (arg = count), e.g. "stall:0@3:40ms,kill:1@8"`)
		faultReplan  = fs.String("fault-replan", "", `survivor batch policy after an eviction: "keep" (default) or "optperf"`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return printCatalog(w)
	}
	if *mlp {
		faultCfg, err := parseFaults(*fault, *faultReplan)
		if err != nil {
			return err
		}
		return runMLP(w, *mlpBatches, *backend, *seed, *epochs, *bucketBytes, *kernelShards, *csv, faultCfg)
	}
	if *fault != "" || *faultReplan != "" {
		return fmt.Errorf("-fault requires -mlp -backend live")
	}

	cfg := cannikin.TrainConfig{
		Workload:   *workload,
		System:     cannikin.SystemKind(*system),
		Seed:       *seed,
		MaxEpochs:  *epochs,
		FixedBatch: *batch,
	}
	if *models != "" {
		cfg.Cluster = cannikin.ClusterConfig{Models: strings.Split(*models, ",")}
	} else {
		cfg.Cluster = cannikin.ClusterConfig{Preset: *clusterName}
	}
	if *chaosChurn > 0 {
		cfg.Chaos = cannikin.ChaosConfig{Churn: *chaosChurn}
	}
	cfg.Audit = cannikin.AuditLevel(*audit)
	if *progress {
		cfg.OnEpoch = func(e cannikin.EpochReport) error {
			fmt.Fprintf(w, "epoch %3d  batch %4d  step %.4fs  metric %.4f\n",
				e.Epoch, e.TotalBatch, e.AvgBatchTime, e.Metric)
			for _, ev := range e.Events {
				fmt.Fprintf(w, "  chaos: node %d %s %.3g (revert=%v)\n", ev.Node, ev.Kind, ev.Value, ev.Revert)
			}
			if e.Audit != nil {
				for _, f := range e.Audit.Failures {
					fmt.Fprintf(w, "  audit: %s\n", f)
				}
			}
			return nil
		}
	}

	rep, err := cannikin.Train(cfg)
	if err != nil {
		return err
	}

	audited := *audit != ""
	cols := []string{"epoch", "batch", "local batches", "avg step (s)", "epoch (s)", "overhead (s)", "events"}
	if audited {
		cols = append(cols, "audit")
	}
	cols = append(cols, rep.MetricName)
	tab := trace.NewTable(cols...)
	for _, e := range rep.Epochs {
		row := []any{e.Epoch, e.TotalBatch, intsToString(e.LocalBatches),
			e.AvgBatchTime, e.TrainTime, e.Overhead, eventsToString(e.Events)}
		if audited {
			row = append(row, auditToString(e.Audit))
		}
		row = append(row, e.Metric)
		tab.AddRowValues(row...)
	}
	var printErr error
	if *csv {
		printErr = tab.FprintCSV(w)
	} else {
		printErr = tab.Fprint(w)
	}
	if printErr != nil {
		return printErr
	}
	fmt.Fprintf(w, "\n%s on %s (%s): converged=%v in %.1fs simulated (overhead %.2f%%)\n",
		rep.System, rep.Cluster, rep.Workload, rep.Converged, rep.TotalTime, 100*rep.OverheadFraction)
	if audited {
		fmt.Fprintf(w, "audit: %d plans checked, %d violations\n", rep.AuditedPlans, rep.AuditViolations)
	}
	return nil
}

// runMLP trains the real data-parallel MLP on the selected execution
// backend and prints the per-epoch trace plus, for the live backend, the
// measured timing profile and the performance model fitted from it.
func runMLP(w io.Writer, batches, backend string, seed uint64, epochs, bucketBytes, kernelShards int, csv bool, fault *cannikin.FaultConfig) error {
	local, err := parseBatches(batches)
	if err != nil {
		return err
	}
	cfg := cannikin.MLPConfig{
		LocalBatches: local,
		Backend:      backend,
		Seed:         seed,
		BucketBytes:  bucketBytes,
		KernelShards: kernelShards,
		Fault:        fault,
	}
	if epochs > 0 {
		cfg.Epochs = epochs
	}
	res, err := cannikin.TrainMLP(cfg)
	if err != nil {
		return err
	}

	tab := trace.NewTable("epoch", "batch", "lr", "loss", "accuracy", "GNS")
	for e := range res.EpochLoss {
		tab.AddRowValues(e, res.BatchSchedule[e], res.LRSchedule[e],
			res.EpochLoss[e], res.EpochAccuracy[e], res.NoiseEstimate[e])
	}
	var printErr error
	if csv {
		printErr = tab.FprintCSV(w)
	} else {
		printErr = tab.Fprint(w)
	}
	if printErr != nil {
		return printErr
	}
	fmt.Fprintf(w, "\n%s backend: %d workers (local batches %s), %d steps, final accuracy %.4f\n",
		res.Backend, res.Workers, intsToString(local), res.Steps, res.FinalAccuracy)
	for _, f := range res.FaultEvents {
		fmt.Fprintf(w, "fault: step %d worker %d %s %.3g\n", f.Step, f.Node, f.Kind, f.Value)
	}
	for _, ev := range res.Evictions {
		plan := "kept survivor batches"
		if ev.Replanned {
			plan = "re-planned survivor batches with OptPerf"
		}
		fmt.Fprintf(w, "eviction: epoch %d step %d evicted worker(s) %s (%s); resumed on %s with batches %s, %s\n",
			ev.Epoch, ev.Step, intsToString(ev.Workers), ev.Reason,
			intsToString(ev.Survivors), intsToString(ev.SurvivorBatches), plan)
	}
	if p := res.Profile; p != nil {
		fmt.Fprintf(w, "measured: %d gradient buckets/step, overlap observed=%v\n", p.Buckets, p.OverlapObserved)
		for i := range p.A {
			fmt.Fprintf(w, "  worker %d: a=%.3gs backprop=%.3gs\n", i, p.A[i], p.Backprop[i])
		}
		if p.FitOK {
			fmt.Fprintf(w, "fitted model: gamma=%.3f To=%.3gs Tu=%.3gs (max fit error %.3f)\n",
				p.Gamma, p.To, p.Tu, p.FitError)
		} else {
			fmt.Fprintln(w, "fitted model: insufficient distinct batch sizes")
		}
	}
	return nil
}

// parseFaults parses the -fault mini-DSL: comma-separated events of the
// form "kind:worker@step[:arg]". The arg is a duration for stall/delay
// and a count for drop; kill takes none.
func parseFaults(spec, replan string) (*cannikin.FaultConfig, error) {
	if spec == "" {
		if replan != "" {
			return &cannikin.FaultConfig{Replan: replan}, nil
		}
		return nil, nil
	}
	cfg := &cannikin.FaultConfig{Replan: replan}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		kind, rest, ok := strings.Cut(item, ":")
		if !ok {
			return nil, fmt.Errorf("bad fault %q: want kind:worker@step[:arg]", item)
		}
		target, arg, hasArg := strings.Cut(rest, ":")
		workerStr, stepStr, ok := strings.Cut(target, "@")
		if !ok {
			return nil, fmt.Errorf("bad fault %q: missing @step", item)
		}
		worker, err := strconv.Atoi(workerStr)
		if err != nil {
			return nil, fmt.Errorf("bad fault %q: worker %q", item, workerStr)
		}
		step, err := strconv.Atoi(stepStr)
		if err != nil {
			return nil, fmt.Errorf("bad fault %q: step %q", item, stepStr)
		}
		ev := cannikin.FaultEvent{Step: step, Worker: worker}
		switch kind {
		case "kill":
			ev.Kind = cannikin.FaultKillWorker
			if hasArg {
				return nil, fmt.Errorf("bad fault %q: kill takes no argument", item)
			}
		case "stall", "delay":
			if kind == "stall" {
				ev.Kind = cannikin.FaultStallCompute
			} else {
				ev.Kind = cannikin.FaultDelayMsg
			}
			if !hasArg {
				return nil, fmt.Errorf("bad fault %q: %s needs a duration argument", item, kind)
			}
			if ev.Delay, err = time.ParseDuration(arg); err != nil || ev.Delay <= 0 {
				return nil, fmt.Errorf("bad fault %q: duration %q", item, arg)
			}
		case "drop":
			ev.Kind = cannikin.FaultDropMsg
			ev.Count = 1
			if hasArg {
				if ev.Count, err = strconv.Atoi(arg); err != nil || ev.Count < 1 {
					return nil, fmt.Errorf("bad fault %q: drop count %q", item, arg)
				}
			}
		default:
			return nil, fmt.Errorf("bad fault %q: unknown kind %q (want kill, stall, delay, drop)", item, kind)
		}
		cfg.Events = append(cfg.Events, ev)
	}
	return cfg, nil
}

// parseBatches parses "16,8,4" into per-worker local batch sizes.
func parseBatches(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		b, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || b < 1 {
			return nil, fmt.Errorf("bad local batch %q in %q", p, s)
		}
		out = append(out, b)
	}
	return out, nil
}

// auditToString renders one epoch's audit outcome for the trace table.
func auditToString(a *cannikin.AuditSummary) string {
	if a == nil {
		return "-"
	}
	if a.Violations > 0 {
		return fmt.Sprintf("%d/%d FAIL", a.Violations, a.Plans)
	}
	return fmt.Sprintf("%d ok", a.Plans)
}

func printCatalog(w io.Writer) error {
	fmt.Fprintln(w, "Workloads (paper Table 5):")
	wt := trace.NewTable("name", "task", "dataset", "model", "optimizer", "lr scaler", "B0", "target")
	for _, wl := range cannikin.Workloads() {
		wt.AddRowValues(wl.Name, wl.Task, wl.Dataset, wl.Model, wl.Optimizer, wl.LRScaler,
			wl.InitBatch, fmt.Sprintf("%s=%.2f", wl.TargetMetric, wl.TargetValue))
	}
	if err := wt.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nGPU catalog (paper Table 1 + evaluation GPUs):")
	gt := trace.NewTable("key", "model", "year", "arch", "CUDA cores", "memory (GB)", "FP16 TFLOPS")
	for _, g := range cannikin.GPUModels() {
		gt.AddRowValues(g.Key, g.Name, g.Year, g.Arch, g.CUDACores, g.MemoryGB, g.FP16TFLOPS)
	}
	return gt.Fprint(w)
}

func intsToString(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, "/")
}

func eventsToString(evs []cannikin.ChaosEventRecord) string {
	if len(evs) == 0 {
		return "-"
	}
	parts := make([]string, len(evs))
	for i, ev := range evs {
		s := fmt.Sprintf("n%d:%s=%.3g", ev.Node, ev.Kind, ev.Value)
		if ev.Revert {
			s += "(revert)"
		}
		parts[i] = s
	}
	return strings.Join(parts, " ")
}
