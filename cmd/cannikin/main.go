// Command cannikin trains one workload on a simulated heterogeneous
// cluster with a chosen training system and prints the per-epoch trace.
// With -mlp it trains the real data-parallel MLP instead; -transport tcp
// additionally spans the run across one OS process per worker, spawning
// cannikin-worker ranks connected by a TCP ring.
//
// Every flag can also come from a JSON run-spec file (-spec run.json);
// flags set explicitly on the command line override the file.
//
// Examples:
//
//	cannikin -cluster b -workload cifar10 -system cannikin
//	cannikin -cluster a -workload imagenet -system lb-bsp -batch 128 -epochs 16
//	cannikin -models H100,V100,P100 -workload cifar10 -system cannikin
//	cannikin -cluster a -workload imagenet -chaos 0.3 -progress
//	cannikin -mlp -backend live -mlp-batches 16,8,4 -epochs 5
//	cannikin -mlp -backend live -fault "stall:0@3:40ms,kill:1@8" -fault-replan optperf
//	cannikin -mlp -transport tcp -mlp-batches 8,8,4,4 -epochs 3 -batch-delay auto
//	cannikin -spec run.json
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"cannikin"

	"cannikin/internal/allreduce"
	"cannikin/internal/runspec"
	"cannikin/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cannikin:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cannikin", flag.ContinueOnError)
	b := runspec.Register(fs)
	list := fs.Bool("list", false, "list workloads and GPU models, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := b.Resolve()
	if err != nil {
		return err
	}
	if *list {
		return printCatalog(w)
	}
	if spec.MLP {
		if spec.Transport == runspec.TransportTCP {
			return runMLPCoordinator(w, spec)
		}
		return runMLP(w, spec)
	}
	if len(spec.Faults) > 0 || spec.FaultReplan != "" {
		return fmt.Errorf("-fault requires -mlp -backend live")
	}
	if spec.Transport != "" && spec.Transport != runspec.TransportChan {
		return fmt.Errorf("-transport %s requires -mlp", spec.Transport)
	}

	cfg := cannikin.TrainConfig{
		Workload:   spec.Workload,
		System:     cannikin.SystemKind(spec.System),
		Seed:       spec.Seed,
		MaxEpochs:  spec.Epochs,
		FixedBatch: spec.Batch,
	}
	if len(spec.Models) > 0 {
		cfg.Cluster = cannikin.ClusterConfig{Models: spec.Models}
	} else {
		cfg.Cluster = cannikin.ClusterConfig{Preset: spec.Cluster}
	}
	if spec.Chaos > 0 {
		cfg.Chaos = cannikin.ChaosConfig{Churn: spec.Chaos}
	}
	cfg.Audit = cannikin.AuditLevel(spec.Audit)
	if spec.Progress {
		cfg.OnEpoch = func(e cannikin.EpochReport) error {
			fmt.Fprintf(w, "epoch %3d  batch %4d  step %.4fs  metric %.4f\n",
				e.Epoch, e.TotalBatch, e.AvgBatchTime, e.Metric)
			for _, ev := range e.Events {
				fmt.Fprintf(w, "  chaos: node %d %s %.3g (revert=%v)\n", ev.Node, ev.Kind, ev.Value, ev.Revert)
			}
			if e.Audit != nil {
				for _, f := range e.Audit.Failures {
					fmt.Fprintf(w, "  audit: %s\n", f)
				}
			}
			return nil
		}
	}

	rep, err := cannikin.Train(cfg)
	if err != nil {
		return err
	}

	audited := spec.Audit != ""
	cols := []string{"epoch", "batch", "local batches", "avg step (s)", "epoch (s)", "overhead (s)", "events"}
	if audited {
		cols = append(cols, "audit")
	}
	cols = append(cols, rep.MetricName)
	tab := trace.NewTable(cols...)
	for _, e := range rep.Epochs {
		row := []any{e.Epoch, e.TotalBatch, intsToString(e.LocalBatches),
			e.AvgBatchTime, e.TrainTime, e.Overhead, eventsToString(e.Events)}
		if audited {
			row = append(row, auditToString(e.Audit))
		}
		row = append(row, e.Metric)
		tab.AddRowValues(row...)
	}
	var printErr error
	if spec.CSV {
		printErr = tab.FprintCSV(w)
	} else {
		printErr = tab.Fprint(w)
	}
	if printErr != nil {
		return printErr
	}
	fmt.Fprintf(w, "\n%s on %s (%s): converged=%v in %.1fs simulated (overhead %.2f%%)\n",
		rep.System, rep.Cluster, rep.Workload, rep.Converged, rep.TotalTime, 100*rep.OverheadFraction)
	if audited {
		fmt.Fprintf(w, "audit: %d plans checked, %d violations\n", rep.AuditedPlans, rep.AuditViolations)
	}
	return nil
}

// mlpConfigOf translates the spec's MLP fields to the public config.
func mlpConfigOf(spec *runspec.Spec) (cannikin.MLPConfig, error) {
	cfg := cannikin.MLPConfig{
		LocalBatches: spec.MLPBatches,
		Backend:      spec.Backend,
		CommMode:     spec.CommMode,
		Seed:         spec.Seed,
		BucketBytes:  spec.BucketBytes,
		KernelShards: spec.KernelShards,
		Allreduce:    spec.Allreduce,
		LinkAlpha:    spec.LinkAlpha,
		LinkBeta:     spec.LinkBeta,
		Fault:        faultsToConfig(spec.Faults, spec.FaultReplan),
		Resume:       spec.Resume,
	}
	if spec.Epochs > 0 {
		cfg.Epochs = spec.Epochs
	}
	for _, j := range spec.Joins {
		cfg.Joins = append(cfg.Joins, cannikin.JoinSpec{Epoch: j.Epoch, Batch: j.Batch, Replan: j.Replan})
	}
	if spec.AutoscaleMax > 0 || spec.AutoscaleShrink > 0 {
		cfg.Autoscale = &cannikin.AutoscaleConfig{
			MinWorkers:      spec.AutoscaleMin,
			MaxWorkers:      spec.AutoscaleMax,
			GrowThreshold:   spec.AutoscaleGrow,
			ShrinkThreshold: spec.AutoscaleShrink,
			JoinBatch:       spec.AutoscaleBatch,
		}
	}
	if spec.CheckpointIn != "" {
		var err error
		if cfg.InitWeights, cfg.InitVelocity, err = cannikin.LoadCheckpoint(spec.CheckpointIn); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// runMLP trains the real data-parallel MLP on the selected in-process
// backend and prints the per-epoch trace plus, for the live backend, the
// measured timing profile and the performance model fitted from it.
func runMLP(w io.Writer, spec *runspec.Spec) error {
	cfg, err := mlpConfigOf(spec)
	if err != nil {
		return err
	}
	res, err := cannikin.TrainMLP(cfg)
	if err != nil {
		return err
	}
	if spec.CheckpointOut != "" {
		if err := cannikin.SaveCheckpoint(spec.CheckpointOut, res.FinalWeights, res.FinalVelocity); err != nil {
			return err
		}
	}
	if err := printMLPEpochs(w, res, spec.CSV); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s backend: %d workers (local batches %s), %d steps, final accuracy %.4f\n",
		res.Backend, res.Workers, intsToString(spec.MLPBatches), res.Steps, res.FinalAccuracy)
	for _, f := range res.FaultEvents {
		fmt.Fprintf(w, "fault: step %d worker %d %s %.3g\n", f.Step, f.Node, f.Kind, f.Value)
	}
	for i, jr := range res.Joins {
		plan := "incumbents kept their batches"
		if jr.Replanned {
			plan = "re-planned batches with OptPerf"
		}
		fmt.Fprintf(w, "join: epoch %d step %d worker %d joined with batch %d (%s); grown batches %s, %s; resume label join-%d\n",
			jr.Epoch, jr.Step, jr.Worker, jr.Batch, jr.Reason, intsToString(jr.Batches), plan, i+1)
	}
	for _, ev := range res.Evictions {
		plan := "kept survivor batches"
		if ev.Replanned {
			plan = "re-planned survivor batches with OptPerf"
		}
		fmt.Fprintf(w, "eviction: epoch %d step %d evicted worker(s) %s (%s); resumed on %s with batches %s, %s\n",
			ev.Epoch, ev.Step, intsToString(ev.Workers), ev.Reason,
			intsToString(ev.Survivors), intsToString(ev.SurvivorBatches), plan)
	}
	if p := res.Profile; p != nil {
		fmt.Fprintf(w, "measured: %d gradient buckets/step, overlap observed=%v\n", p.Buckets, p.OverlapObserved)
		for i := range p.A {
			fmt.Fprintf(w, "  worker %d: a=%.3gs backprop=%.3gs\n", i, p.A[i], p.Backprop[i])
		}
		if p.FitOK {
			fmt.Fprintf(w, "fitted model: gamma=%.3f To=%.3gs Tu=%.3gs (max fit error %.3f)\n",
				p.Gamma, p.To, p.Tu, p.FitError)
		} else {
			fmt.Fprintln(w, "fitted model: insufficient distinct batch sizes")
		}
	}
	return nil
}

// printMLPEpochs prints the shared per-epoch table of an MLP run.
func printMLPEpochs(w io.Writer, res *cannikin.MLPResult, csv bool) error {
	tab := trace.NewTable("epoch", "batch", "lr", "loss", "accuracy", "GNS")
	for e := range res.EpochLoss {
		tab.AddRowValues(e, res.BatchSchedule[e], res.LRSchedule[e],
			res.EpochLoss[e], res.EpochAccuracy[e], res.NoiseEstimate[e])
	}
	if csv {
		return tab.FprintCSV(w)
	}
	return tab.Fprint(w)
}

// runMLPCoordinator spans the MLP run across one OS process per worker:
// it reserves a loopback port per rank (unless -peers names them), writes
// the resolved spec to a shared file, launches a cannikin-worker per rank,
// and verifies every rank's final-weight hash against the others AND
// against an in-process channel-transport reference run of the same seed —
// the end-to-end bitwise-determinism check across transports and
// processes.
func runMLPCoordinator(w io.Writer, spec *runspec.Spec) error {
	if len(spec.Faults) > 0 || spec.FaultReplan != "" {
		return fmt.Errorf("-fault is not supported with -transport tcp (kill a worker process instead)")
	}
	if spec.Backend == "live" {
		return fmt.Errorf("-transport tcp runs one process per worker; -backend live is the in-process engine")
	}
	if spec.AutoscaleMax > 0 || spec.AutoscaleShrink > 0 {
		return fmt.Errorf("the autoscaler is not supported with -transport tcp: its decisions depend on wall-clock probes the coordinator cannot replay across process generations (use -join for a scheduled grow)")
	}
	if _, err := runspec.ParseBatchDelay(spec.BatchDelay); err != nil {
		return err
	}
	workerBin, err := findWorkerBin(spec.WorkerBin)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "cannikin-run")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if len(spec.Joins) > 0 {
		return runMLPElasticCoordinator(w, spec, workerBin, dir)
	}

	hash, out0, err := launchGeneration(w, spec, workerBin, filepath.Join(dir, "run.json"))
	if err != nil {
		return err
	}

	// The channel-transport reference: same seed, in this process.
	refSpec := *spec
	refSpec.Backend = "sim"
	refCfg, err := mlpConfigOf(&refSpec)
	if err != nil {
		return err
	}
	ref, err := cannikin.TrainMLP(refCfg)
	if err != nil {
		return fmt.Errorf("channel reference run: %w", err)
	}
	refHash := weightsHash(ref.FinalWeights)
	if refHash != hash {
		return fmt.Errorf("tcp weights %s diverged from channel-transport reference %s", hash, refHash)
	}

	io.WriteString(w, out0)
	fmt.Fprintf(w, "tcp transport: %d worker processes, weights sha256 %s — identical on every rank and to the channel-transport reference\n",
		len(spec.MLPBatches), hash[:16])
	return nil
}

// runMLPElasticCoordinator runs a hot-join schedule across OS processes by
// decomposing the elastic run into fixed-membership process generations:
// each generation trains its epoch segment, rank 0 writes the
// weights+velocity checkpoint, and the next generation — one worker wider —
// resumes from it under the same "join-<n>" randomness label the in-process
// engine derives at a join. The final weights are verified identical on
// every rank of the last generation AND against an in-process hot-join
// reference of the full schedule, so the multi-process join is held to the
// same bitwise standard as the single-process one.
func runMLPElasticCoordinator(w io.Writer, spec *runspec.Spec, workerBin, dir string) error {
	if spec.Resume != "" {
		return fmt.Errorf("-resume cannot be combined with -join under -transport tcp: the generational resume labels are derived from the join sequence itself")
	}
	epochs := spec.Epochs
	if epochs == 0 {
		epochs = 10
	}
	prev := 0
	for _, j := range spec.Joins {
		if j.Replan == "optperf" {
			return fmt.Errorf("-join replan optperf is not supported with -transport tcp: the re-planned batches depend on a runtime probe the next generation cannot know ahead of time")
		}
		if j.Epoch <= prev || j.Epoch >= epochs {
			return fmt.Errorf("tcp joins need strictly increasing epochs in (0, %d): got %q", epochs, runspec.FormatJoins(spec.Joins))
		}
		prev = j.Epoch
	}

	batches := append([]int(nil), spec.MLPBatches...)
	resume, checkIn := "", spec.CheckpointIn
	segStart := 0
	var hash, out0 string
	for gi := 0; gi <= len(spec.Joins); gi++ {
		segEnd := epochs
		if gi < len(spec.Joins) {
			segEnd = spec.Joins[gi].Epoch
		}
		gen := *spec
		gen.MLPBatches = batches
		gen.Epochs = segEnd - segStart
		gen.Peers = nil // fresh loopback ports per generation
		gen.Joins = nil
		gen.Resume = resume
		gen.CheckpointIn = checkIn
		gen.CheckpointOut = ""
		ckpt := filepath.Join(dir, fmt.Sprintf("gen%d.ckpt", gi+1))
		if gi < len(spec.Joins) {
			gen.CheckpointOut = ckpt
		}
		fmt.Fprintf(w, "generation %d: %d workers (batches %s), epochs [%d, %d), resume %q\n",
			gi+1, len(batches), intsToString(batches), segStart, segEnd, resume)
		h, o, err := launchGeneration(w, &gen, workerBin, filepath.Join(dir, fmt.Sprintf("gen%d.json", gi+1)))
		if err != nil {
			return fmt.Errorf("generation %d: %w", gi+1, err)
		}
		hash, out0 = h, o
		if gi < len(spec.Joins) {
			checkIn = ckpt
			resume = fmt.Sprintf("join-%d", gi+1)
			batches = append(batches, spec.Joins[gi].Batch)
			segStart = segEnd
		}
	}

	// The in-process hot-join reference: the full elastic schedule in one
	// process, chan transport.
	refSpec := *spec
	refSpec.Backend = "sim"
	refCfg, err := mlpConfigOf(&refSpec)
	if err != nil {
		return err
	}
	ref, err := cannikin.TrainMLP(refCfg)
	if err != nil {
		return fmt.Errorf("elastic reference run: %w", err)
	}
	refHash := weightsHash(ref.FinalWeights)
	if refHash != hash {
		return fmt.Errorf("tcp elastic weights %s diverged from in-process hot-join reference %s", hash, refHash)
	}

	io.WriteString(w, out0)
	fmt.Fprintf(w, "tcp elastic: %d process generations grew %d -> %d workers; final weights sha256 %s — identical on every rank and to the in-process hot-join reference\n",
		len(spec.Joins)+1, len(spec.MLPBatches), len(batches), hash[:16])
	return nil
}

// launchGeneration spawns one fixed-membership set of cannikin-worker
// processes from the spec, waits for them all, and returns the
// cross-checked weights hash plus rank 0's output.
func launchGeneration(w io.Writer, spec *runspec.Spec, workerBin, specPath string) (hash, rank0 string, err error) {
	n := len(spec.MLPBatches)
	peers := spec.Peers
	if len(peers) == 0 {
		addrs, listeners, err := allreduce.ReserveRingAddrs(n)
		if err != nil {
			return "", "", err
		}
		// The workers re-bind these just-vacated ports themselves.
		for _, ln := range listeners {
			ln.Close()
		}
		peers = addrs
	}
	if len(peers) != n {
		return "", "", fmt.Errorf("%d peers for %d workers", len(peers), n)
	}

	// One shared spec file; each rank overrides -rank on its command line.
	shared := *spec
	shared.Peers = peers
	shared.Backend = ""
	shared.Transport = runspec.TransportTCP
	if err := shared.Save(specPath); err != nil {
		return "", "", err
	}

	fmt.Fprintf(w, "spawning %d cannikin-worker processes over tcp (%s)\n", n, strings.Join(peers, ", "))
	cmds := make([]*exec.Cmd, n)
	outs := make([]bytes.Buffer, n)
	for i := 0; i < n; i++ {
		cmds[i] = exec.Command(workerBin, "-spec", specPath, "-rank", strconv.Itoa(i))
		cmds[i].Stdout = &outs[i]
		cmds[i].Stderr = &outs[i]
		if err := cmds[i].Start(); err != nil {
			return "", "", fmt.Errorf("start rank %d: %w", i, err)
		}
	}
	var runErr error
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil && runErr == nil {
			runErr = fmt.Errorf("rank %d: %w", i, err)
		}
	}
	if runErr != nil {
		for i := range outs {
			for _, line := range strings.Split(strings.TrimRight(outs[i].String(), "\n"), "\n") {
				fmt.Fprintf(w, "[rank %d] %s\n", i, line)
			}
		}
		return "", "", runErr
	}

	hashes := make([]string, n)
	for i := range outs {
		if hashes[i] = extractWeightsHash(outs[i].String()); hashes[i] == "" {
			return "", "", fmt.Errorf("rank %d printed no weights hash:\n%s", i, outs[i].String())
		}
	}
	for i := 1; i < n; i++ {
		if hashes[i] != hashes[0] {
			return "", "", fmt.Errorf("rank %d weights %s diverged from rank 0 weights %s", i, hashes[i], hashes[0])
		}
	}
	return hashes[0], outs[0].String(), nil
}

// findWorkerBin locates cannikin-worker: the explicit flag, then next to
// this binary, then $PATH.
func findWorkerBin(flagVal string) (string, error) {
	if flagVal != "" {
		return flagVal, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "cannikin-worker")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand, nil
		}
	}
	if path, err := exec.LookPath("cannikin-worker"); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("cannikin-worker binary not found (build it with `go build ./cmd/cannikin-worker` or pass -worker-bin)")
}

// weightsHash is the canonical cross-process weight fingerprint: sha256
// over the vector's IEEE-754 bit patterns, little-endian.
func weightsHash(weights []float64) string {
	h := sha256.New()
	var word [8]byte
	for _, v := range weights {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			word[i] = byte(bits >> (8 * i))
		}
		h.Write(word[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// extractWeightsHash pulls the worker's "weights-sha256: <hex>" line.
func extractWeightsHash(out string) string {
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "weights-sha256:"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// parseFaults parses the -fault mini-DSL ("kind:worker@step[:arg]") into
// the public fault config; kept as the conversion point between runspec's
// transport-agnostic events and the cannikin API.
func parseFaults(spec, replan string) (*cannikin.FaultConfig, error) {
	events, err := runspec.ParseFaults(spec)
	if err != nil {
		return nil, err
	}
	return faultsToConfig(events, replan), nil
}

// faultsToConfig converts parsed fault events to the public config; nil
// when no events and no replan policy are present.
func faultsToConfig(events []runspec.Fault, replan string) *cannikin.FaultConfig {
	if len(events) == 0 && replan == "" {
		return nil
	}
	cfg := &cannikin.FaultConfig{Replan: replan}
	for _, f := range events {
		ev := cannikin.FaultEvent{Step: f.Step, Worker: f.Worker, Delay: f.Delay, Count: f.Count}
		switch f.Kind {
		case "kill":
			ev.Kind = cannikin.FaultKillWorker
		case "stall":
			ev.Kind = cannikin.FaultStallCompute
		case "delay":
			ev.Kind = cannikin.FaultDelayMsg
		case "drop":
			ev.Kind = cannikin.FaultDropMsg
		}
		cfg.Events = append(cfg.Events, ev)
	}
	return cfg
}

// parseBatches parses "16,8,4" into per-worker local batch sizes.
func parseBatches(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		b, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || b < 1 {
			return nil, fmt.Errorf("bad local batch %q in %q", p, s)
		}
		out = append(out, b)
	}
	return out, nil
}

// auditToString renders one epoch's audit outcome for the trace table.
func auditToString(a *cannikin.AuditSummary) string {
	if a == nil {
		return "-"
	}
	if a.Violations > 0 {
		return fmt.Sprintf("%d/%d FAIL", a.Violations, a.Plans)
	}
	return fmt.Sprintf("%d ok", a.Plans)
}

func printCatalog(w io.Writer) error {
	fmt.Fprintln(w, "Workloads (paper Table 5):")
	wt := trace.NewTable("name", "task", "dataset", "model", "optimizer", "lr scaler", "B0", "target")
	for _, wl := range cannikin.Workloads() {
		wt.AddRowValues(wl.Name, wl.Task, wl.Dataset, wl.Model, wl.Optimizer, wl.LRScaler,
			wl.InitBatch, fmt.Sprintf("%s=%.2f", wl.TargetMetric, wl.TargetValue))
	}
	if err := wt.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nGPU catalog (paper Table 1 + evaluation GPUs):")
	gt := trace.NewTable("key", "model", "year", "arch", "CUDA cores", "memory (GB)", "FP16 TFLOPS")
	for _, g := range cannikin.GPUModels() {
		gt.AddRowValues(g.Key, g.Name, g.Year, g.Arch, g.CUDACores, g.MemoryGB, g.FP16TFLOPS)
	}
	return gt.Fprint(w)
}

func intsToString(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, "/")
}

func eventsToString(evs []cannikin.ChaosEventRecord) string {
	if len(evs) == 0 {
		return "-"
	}
	parts := make([]string, len(evs))
	for i, ev := range evs {
		s := fmt.Sprintf("n%d:%s=%.3g", ev.Node, ev.Kind, ev.Value)
		if ev.Revert {
			s += "(revert)"
		}
		parts[i] = s
	}
	return strings.Join(parts, " ")
}
