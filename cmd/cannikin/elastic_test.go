package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunMLPJoin drives a scheduled hot-join through the CLI on the live
// in-process backend and checks the join record line.
func TestRunMLPJoin(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-mlp", "-backend", "live", "-mlp-batches", "8,8",
		"-epochs", "3", "-join", "1:4", "-seed", "5",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"2 workers (local batches 8/8)", // the initial membership; joins are reported below it
		"join: epoch 1 step ",
		"joined with batch 4 (scheduled); grown batches 8/8/4",
		"resume label join-1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunMLPCheckpointHandoff is the CLI-level resume contract: a prefix
// run writes a checkpoint, a grown continuation resumes from it with the
// join's randomness label, and the joined single-run reference must print
// the continuation's exact final state. The continuation's own checkpoint
// round-trips the weights bitwise through the file format.
func TestRunMLPCheckpointHandoff(t *testing.T) {
	dir := t.TempDir()
	prefixCkpt := filepath.Join(dir, "prefix.ckpt")
	contCkpt := filepath.Join(dir, "cont.ckpt")
	fullCkpt := filepath.Join(dir, "full.ckpt")

	var buf bytes.Buffer
	err := run([]string{
		"-mlp", "-backend", "live", "-mlp-batches", "8,8",
		"-epochs", "1", "-seed", "5", "-checkpoint-out", prefixCkpt,
	}, &buf)
	if err != nil {
		t.Fatalf("prefix run: %v\n%s", err, buf.String())
	}

	buf.Reset()
	err = run([]string{
		"-mlp", "-backend", "live", "-mlp-batches", "8,8,4",
		"-epochs", "2", "-seed", "5",
		"-checkpoint-in", prefixCkpt, "-resume", "join-1", "-checkpoint-out", contCkpt,
	}, &buf)
	if err != nil {
		t.Fatalf("continuation run: %v\n%s", err, buf.String())
	}

	buf.Reset()
	err = run([]string{
		"-mlp", "-backend", "live", "-mlp-batches", "8,8",
		"-epochs", "3", "-join", "1:4", "-seed", "5", "-checkpoint-out", fullCkpt,
	}, &buf)
	if err != nil {
		t.Fatalf("joined reference run: %v\n%s", err, buf.String())
	}

	cont, err := os.ReadFile(contCkpt)
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(fullCkpt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cont, full) {
		t.Fatalf("checkpoint-in + resume continuation diverged from the single joined run:\n%s\nvs\n%s", cont, full)
	}
}

// TestRunMLPAutoscaleFlag drives the autoscaler through the CLI. The
// default Eq. 8 pricing depends on this machine's measured step times, so
// only the shape is asserted: the run completes, and any join it commits is
// an autoscaler join with the configured batch.
func TestRunMLPAutoscaleFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-mlp", "-backend", "live", "-mlp-batches", "8,8",
		"-epochs", "2", "-seed", "5",
		"-autoscale-max", "3", "-autoscale-grow", "0.01", "-autoscale-batch", "4",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if strings.Contains(out, "join: ") {
		if !strings.Contains(out, "autoscale grow") || !strings.Contains(out, "joined with batch 4") {
			t.Fatalf("autoscaler join malformed:\n%s", out)
		}
	}
}

// TestRunElasticFlagRejects pins the elastic argument validation of the
// in-process path.
func TestRunElasticFlagRejects(t *testing.T) {
	cases := [][]string{
		{"-mlp", "-backend", "live", "-join", "0:4"},                       // epoch 0 rejected by the DSL
		{"-mlp", "-backend", "live", "-epochs", "3", "-join", "3:4"},       // beyond final epoch
		{"-mlp", "-backend", "live", "-join", "1:4:hope"},                  // unknown replan
		{"-mlp", "-backend", "live", "-checkpoint-in", "/nonexistent.ck"},  // missing checkpoint
		{"-mlp", "-backend", "live", "-autoscale-max", "3", "-autoscale-grow", "-0.5"}, // negative threshold
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("accepted %v", args)
		}
	}
}
