// Command cannikin-worker runs ONE rank of a multi-process MLP training
// job over a TCP ring. It is normally launched by `cannikin -mlp
// -transport tcp`, which hands every rank the same spec file:
//
//	cannikin-worker -spec run.json -rank 2
//
// but it can be started by hand on separate machines too:
//
//	cannikin-worker -mlp -transport tcp -mlp-batches 8,8,4,4 \
//	    -peers h0:7000,h1:7000,h2:7000,h3:7000 -rank 1 -listen 0.0.0.0:7000
//
// Every rank must receive the identical spec (same seed, batches, peers);
// each deterministically reproduces the dataset and initial weights, so
// the trained weights are bitwise-identical on every rank. The final line
// of output is the proof token the coordinator compares across ranks:
//
//	weights-sha256: <hex>
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"cannikin"

	"cannikin/internal/runspec"
	"cannikin/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cannikin-worker:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cannikin-worker", flag.ContinueOnError)
	b := runspec.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := b.Resolve()
	if err != nil {
		return err
	}
	if spec.Transport != runspec.TransportTCP {
		return fmt.Errorf("cannikin-worker requires -transport tcp (got %q)", spec.Transport)
	}
	if len(spec.Peers) == 0 {
		return fmt.Errorf("cannikin-worker requires -peers (every rank's host:port, in rank order)")
	}
	if len(spec.Faults) > 0 || spec.FaultReplan != "" {
		return fmt.Errorf("fault injection is not supported in worker mode")
	}
	delay, err := runspec.ParseBatchDelay(spec.BatchDelay)
	if err != nil {
		return err
	}

	cfg := cannikin.MLPConfig{
		LocalBatches: spec.MLPBatches,
		Seed:         spec.Seed,
		BucketBytes:  spec.BucketBytes,
		KernelShards: spec.KernelShards,
		Allreduce:    spec.Allreduce,
		LinkAlpha:    spec.LinkAlpha,
		LinkBeta:     spec.LinkBeta,
		Resume:       spec.Resume,
	}
	if spec.Epochs > 0 {
		cfg.Epochs = spec.Epochs
	}
	if spec.CheckpointIn != "" {
		if cfg.InitWeights, cfg.InitVelocity, err = cannikin.LoadCheckpoint(spec.CheckpointIn); err != nil {
			return err
		}
	}
	res, st, err := cannikin.TrainMLPWorker(cfg, cannikin.WorkerRingConfig{
		Rank:       spec.Rank,
		Peers:      spec.Peers,
		Listen:     spec.Listen,
		BatchDelay: delay,
		Guard:      spec.Guard,
	})
	if err != nil {
		return err
	}
	// Every rank holds identical weights, so one writer suffices — and
	// avoids racing writes to a shared path.
	if spec.CheckpointOut != "" && spec.Rank == 0 {
		if err := cannikin.SaveCheckpoint(spec.CheckpointOut, res.FinalWeights, res.FinalVelocity); err != nil {
			return err
		}
	}

	if err := printEpochs(w, res, spec.CSV); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nworker rank %d of %d (local batches %s): %d steps, final accuracy %.4f\n",
		spec.Rank, res.Workers, intsToString(spec.MLPBatches), res.Steps, res.FinalAccuracy)
	fmt.Fprintf(w, "ring: %d hops in %d network writes (%.2f msgs/batch), %d bytes sent, %d received\n",
		st.MessagesSent, st.Batches, st.MsgsPerBatch, st.BytesSent, st.BytesReceived)
	fmt.Fprintf(w, "weights-sha256: %s\n", weightsHash(res.FinalWeights))
	return nil
}

// printEpochs prints the per-epoch table — identical on every rank, so
// the coordinator shows rank 0's verbatim.
func printEpochs(w io.Writer, res *cannikin.MLPResult, csv bool) error {
	tab := trace.NewTable("epoch", "batch", "lr", "loss", "accuracy", "GNS")
	for e := range res.EpochLoss {
		tab.AddRowValues(e, res.BatchSchedule[e], res.LRSchedule[e],
			res.EpochLoss[e], res.EpochAccuracy[e], res.NoiseEstimate[e])
	}
	if csv {
		return tab.FprintCSV(w)
	}
	return tab.Fprint(w)
}

func intsToString(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, "/")
}

// weightsHash fingerprints the flat weight vector: sha256 over the
// IEEE-754 bit patterns, little-endian. Must match the coordinator's.
func weightsHash(weights []float64) string {
	h := sha256.New()
	var word [8]byte
	for _, v := range weights {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			word[i] = byte(bits >> (8 * i))
		}
		h.Write(word[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
