package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "fig9", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 9", "cannikin", "lb-bsp"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "fig5,sched", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "job scheduling") {
		t.Fatalf("multi-experiment output incomplete:\n%s", out[:min(400, len(out))])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "fig99"}, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestOrderCoversAllIDs(t *testing.T) {
	// Every id in the canonical order must dispatch without "unknown".
	for _, id := range order {
		switch id {
		case "fig5", "fig9", "sched", "dynamic", "ablations":
			// Cheap enough to exercise above or individually; the rest are
			// covered by internal/experiments tests. Here just ensure the
			// dispatcher knows the id.
		}
	}
	var sb strings.Builder
	if err := run([]string{"-exp", "dynamic", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "resource event at epoch") {
		t.Fatal("dynamic experiment output incomplete")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
