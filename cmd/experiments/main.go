// Command experiments regenerates the paper's evaluation tables and
// figures on the simulated clusters.
//
//	experiments -exp all          # everything (a few minutes)
//	experiments -exp fig8         # one experiment
//	experiments -exp fig10 -quick # trimmed measurement repetitions
//
// Available experiments: fig5 fig6 fig7 fig8 fig9 fig10 table6 pred
// sharing dynamic recovery sched ablations runtime.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cannikin/internal/experiments"
	"cannikin/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

var order = []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table6", "pred", "sharing", "dynamic", "recovery", "sched", "ablations", "runtime"}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp    = fs.String("exp", "all", "experiment id or \"all\": "+strings.Join(order, " "))
		seed   = fs.Uint64("seed", 1, "random seed")
		quick  = fs.Bool("quick", false, "trim measurement repetitions")
		format = fs.String("format", "text", `output format: "text" or "md"`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "md" {
		return fmt.Errorf("unknown format %q", *format)
	}
	opt := experiments.Options{Seed: *seed, Quick: *quick}
	out := renderer{w: w, md: *format == "md"}

	ids := order
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		if err := runOne(id, opt, out); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

// renderer prints sections, tables, and figures in the chosen format.
type renderer struct {
	w  io.Writer
	md bool
}

func (r renderer) section(title string) {
	if r.md {
		fmt.Fprintf(r.w, "\n## %s\n\n", title)
		return
	}
	fmt.Fprintf(r.w, "\n==== %s ====\n\n", title)
}

func (r renderer) table(t *trace.Table) error {
	if r.md {
		return t.FprintMarkdown(r.w)
	}
	return t.Fprint(r.w)
}

func (r renderer) figs(figs ...*trace.Figure) error {
	for _, f := range figs {
		var err error
		if r.md {
			err = f.FprintMarkdown(r.w)
		} else {
			err = f.Fprint(r.w)
			fmt.Fprintln(r.w)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func runOne(id string, opt experiments.Options, out renderer) error {
	w := out.w
	section := out.section
	printFigs := out.figs
	switch id {
	case "fig5":
		section("Figure 5: batch sizes during CIFAR-10 training")
		fig, err := experiments.Fig5(opt)
		if err != nil {
			return err
		}
		return printFigs(fig)
	case "fig6":
		section("Figure 6: Cannikin vs AdaptDL convergence quality")
		figs, err := experiments.Fig6(opt)
		if err != nil {
			return err
		}
		return printFigs(figs...)
	case "fig7":
		section("Figure 7: convergence processes on cluster B")
		figs, err := experiments.Fig7(opt)
		if err != nil {
			return err
		}
		return printFigs(figs...)
	case "fig8":
		section("Figure 8: normalized convergence time (Cannikin = 1)")
		tab, err := experiments.Fig8(opt)
		if err != nil {
			return err
		}
		return out.table(tab)
	case "fig9":
		section("Figure 9: approach to OptPerf with fixed B=128")
		fig, err := experiments.Fig9(opt)
		if err != nil {
			return err
		}
		return printFigs(fig)
	case "fig10":
		section("Figure 10: batch processing time vs total batch size")
		figs, err := experiments.Fig10(opt)
		if err != nil {
			return err
		}
		return printFigs(figs...)
	case "table6":
		section("Table 6: scheduling overhead of Cannikin")
		tab, err := experiments.Table6(opt)
		if err != nil {
			return err
		}
		return out.table(tab)
	case "pred":
		section("Section 5.3: OptPerf prediction error (IVW vs plain averaging)")
		tab, err := experiments.PredictionError(opt)
		if err != nil {
			return err
		}
		return out.table(tab)
	case "sharing":
		section("Section 6: sharing-induced heterogeneity (cluster C)")
		tab, err := experiments.Sharing(opt)
		if err != nil {
			return err
		}
		return out.table(tab)
	case "dynamic":
		section("Extension: sudden resource change mid-training")
		fig, eventEpoch, err := experiments.Dynamic(opt)
		if err != nil {
			return err
		}
		if err := printFigs(fig); err != nil {
			return err
		}
		fmt.Fprintf(w, "(resource event at epoch %d)\n", eventEpoch)
		return nil
	case "recovery":
		section("Extension: recovery from dynamic heterogeneity (chaos engine)")
		tab, _, eventEpoch, err := experiments.DynamicRecovery(opt)
		if err != nil {
			return err
		}
		if err := out.table(tab); err != nil {
			return err
		}
		fmt.Fprintf(w, "(compute-share event at epoch %d; reference = OptPerf re-solved on the perturbed cluster)\n", eventEpoch)
		return nil
	case "sched":
		section("Extension: heterogeneity-aware job scheduling")
		tab, err := experiments.Scheduler(opt)
		if err != nil {
			return err
		}
		return out.table(tab)
	case "ablations":
		section("Ablation: GNS estimator")
		t1, err := experiments.AblationGNS(opt)
		if err != nil {
			return err
		}
		if err := out.table(t1); err != nil {
			return err
		}
		section("Ablation: warm-started overlap-state search")
		t2, err := experiments.AblationWarmStart(opt)
		if err != nil {
			return err
		}
		if err := out.table(t2); err != nil {
			return err
		}
		section("Ablation: overlap-aware vs equal-compute allocation")
		t3, err := experiments.AblationOverlap(opt)
		if err != nil {
			return err
		}
		if err := out.table(t3); err != nil {
			return err
		}
		section("Ablation: network bandwidth sensitivity")
		fig, err := experiments.AblationBandwidth(opt)
		if err != nil {
			return err
		}
		return printFigs(fig)
	case "runtime":
		section("Extension: live execution engine vs sequential reference")
		tab, err := experiments.Runtime(opt)
		if err != nil {
			return err
		}
		if err := out.table(tab); err != nil {
			return err
		}
		fmt.Fprintln(w, "(identical arithmetic in both engines — weights are bitwise equal; wall-clock differs by execution model)")
		return nil
	default:
		return fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(order, " "))
	}
}
