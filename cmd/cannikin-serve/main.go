// Command cannikin-serve runs the multi-tenant training service: one
// goodput-driven scheduler admitting, queueing, and running many
// concurrent training jobs over a shared simulated device pool.
//
// Jobs are submitted as JSON run-spec documents (the same format as
// -spec files of the cannikin command) and stream their epochs back as
// NDJSON:
//
//	cannikin-serve -addr 127.0.0.1:8080 -devices 8 &
//	curl -s -X POST localhost:8080/jobs -d '{"mlp":true,"mlp_batches":[8,4],"epochs":3,"seed":7}'
//	curl -s localhost:8080/jobs/job-0/stream
//	curl -s localhost:8080/stats
//	curl -s -X DELETE localhost:8080/jobs/job-0
//
// On SIGTERM/SIGINT the server stops admitting, cancels queued jobs, lets
// running jobs finish (bounded by -drain-timeout), and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cannikin/internal/jobs"
	"cannikin/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cannikin-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("cannikin-serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	devices := fs.Int("devices", 8, "device pool size")
	models := fs.String("models", "", "comma-separated GPU models cycled across the pool (default: a heterogeneous mix)")
	poolSeed := fs.Uint64("pool-seed", 1, "pool random seed (device and per-job speed jitter)")
	jitter := fs.Float64("jitter", 0.05, "log-space sigma of device/job speed jitter (0 = none)")
	maxQueue := fs.Int("max-queue", 64, "bounded queue depth; submissions beyond it get HTTP 429")
	policy := fs.String("policy", jobs.PolicyGoodput, `allocator: "goodput" (marginal goodput) or "equal" (naive FIFO baseline)`)
	retryAfter := fs.Duration("retry-after", 500*time.Millisecond, "Retry-After hint on queue-full rejections")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for running jobs on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := server.Config{
		Pool: jobs.PoolConfig{
			Devices: *devices,
			Seed:    *poolSeed,
			Jitter:  *jitter,
		},
		MaxQueue:   *maxQueue,
		Policy:     *policy,
		RetryAfter: *retryAfter,
	}
	if *models != "" {
		for _, m := range strings.Split(*models, ",") {
			cfg.Pool.Models = append(cfg.Pool.Models, strings.TrimSpace(m))
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Print the resolved address (meaningful with port 0) on its own line
	// so harnesses can scrape it.
	fmt.Fprintf(w, "listening on %s (%d devices, policy %s)\n", ln.Addr(), *devices, *policy)

	httpSrv := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(w, "received %s, draining (timeout %s)\n", sig, *drainTimeout)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-errCh // Serve has returned ErrServerClosed
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		return drainErr
	}
	if drainErr != nil {
		fmt.Fprintf(w, "drain timeout: running jobs were canceled\n")
	} else {
		fmt.Fprintf(w, "drained cleanly\n")
	}
	return nil
}
