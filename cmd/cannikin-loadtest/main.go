// Command cannikin-loadtest drives the multi-tenant training service at
// scale and checks its scheduling claims.
//
// In-process mode (default) runs the same deterministic stream of short
// jobs through two schedulers — the marginal-goodput allocator and the
// naive equal-split baseline — over an identically seeded heterogeneous
// device pool, recording admission latency, queue depth, backpressure
// retries, and accumulated goodput, then asserts that
//
//  1. every job settles (no deadlock, no stuck queue),
//  2. no goroutines leak,
//  3. the goodput allocator's granted goodput is at least the equal-split
//     counterfactual priced at the same decision points.
//
// With -url it instead smoke-drives a running cannikin-serve over HTTP:
// concurrent submissions, an NDJSON epoch stream, a cancellation, and a
// stats read.
//
//	cannikin-loadtest -jobs 200 -devices 12
//	cannikin-loadtest -url http://127.0.0.1:8080 -jobs 3
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	gort "runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cannikin/internal/jobs"
	"cannikin/internal/runspec"
	"cannikin/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cannikin-loadtest:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cannikin-loadtest", flag.ContinueOnError)
	numJobs := fs.Int("jobs", 200, "number of jobs to submit")
	devices := fs.Int("devices", 12, "device pool size (in-process mode)")
	seed := fs.Uint64("seed", 7, "pool + job-stream seed")
	maxQueue := fs.Int("queue", 32, "bounded queue depth (small, to exercise backpressure)")
	clients := fs.Int("clients", 16, "concurrent submitting clients")
	epochMS := fs.Int("epoch-ms", 2, "synthetic per-epoch duration in milliseconds")
	epochs := fs.Int("epochs", 2, "epochs per job")
	real := fs.Bool("real", false, "run real MLP training jobs instead of synthetic sleeps")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall deadline (deadlock detector)")
	url := fs.String("url", "", "smoke-drive a running cannikin-serve at this base URL instead")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url != "" {
		return httpSmoke(w, strings.TrimRight(*url, "/"), *numJobs, *timeout)
	}

	baseline := gort.NumGoroutine()
	var results []policyResult
	for _, policy := range []string{jobs.PolicyGoodput, jobs.PolicyEqualSplit} {
		res, err := runPolicy(w, policy, loadConfig{
			jobs: *numJobs, devices: *devices, seed: *seed, maxQueue: *maxQueue,
			clients: *clients, epochMS: *epochMS, epochs: *epochs, real: *real,
			timeout: *timeout,
		})
		if err != nil {
			return fmt.Errorf("policy %s: %w", policy, err)
		}
		results = append(results, res)
	}

	gp, eq := results[0], results[1]
	fmt.Fprintf(w, "\ngoodput-policy granted %.2f (equal-split counterfactual %.2f, edge %+.1f%%)\n",
		gp.stats.GoodputGranted, gp.stats.GoodputEqualSplit,
		100*(gp.stats.GoodputGranted/gp.stats.GoodputEqualSplit-1))
	fmt.Fprintf(w, "equal-policy  granted %.2f\n", eq.stats.GoodputGranted)
	if gp.stats.GoodputGranted < gp.stats.GoodputEqualSplit {
		return fmt.Errorf("goodput allocator lost to the equal-split counterfactual: %.4f < %.4f",
			gp.stats.GoodputGranted, gp.stats.GoodputEqualSplit)
	}
	if gp.stats.GoodputGranted <= 0 {
		return errors.New("no goodput accounted")
	}

	// Leak check: poll briefly — http clients and finished workers unwind
	// asynchronously.
	deadline := time.Now().Add(3 * time.Second)
	for gort.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := gort.NumGoroutine(); n > baseline+2 {
		return fmt.Errorf("goroutine leak: %d running, baseline %d", n, baseline)
	}
	fmt.Fprintln(w, "PASS")
	return nil
}

type loadConfig struct {
	jobs, devices, maxQueue, clients, epochMS, epochs int
	seed                                              uint64
	real                                              bool
	timeout                                           time.Duration
}

type policyResult struct {
	stats   jobs.Stats
	retries int64
	elapsed time.Duration
}

// syntheticRunner stands in for training: it sleeps a deterministic
// duration per epoch (scaled by the job's worker count) and reports a
// plausible noise estimate, honoring cancellation.
type syntheticRunner struct {
	epochMS int
	epochs  int
}

func (r syntheticRunner) Run(ctx context.Context, spec *runspec.Spec, onEpoch func(jobs.Epoch) error) (*jobs.Outcome, error) {
	per := time.Duration(r.epochMS) * time.Millisecond
	for e := 0; e < r.epochs; e++ {
		select {
		case <-time.After(per):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		noise := 40 + 10*float64(spec.Seed%7)
		if err := onEpoch(jobs.Epoch{Epoch: e, Batch: 32, Noise: noise, Metric: float64(e)}); err != nil {
			return nil, err
		}
	}
	return &jobs.Outcome{Epochs: r.epochs}, nil
}

// jobSpec deterministically shapes the i-th job of the stream: widths
// cycle 1..4, seeds advance, so both policies see the identical workload.
func jobSpec(i, epochs int, seed uint64, real bool) *runspec.Spec {
	s := runspec.Default()
	s.MLP = true
	s.Seed = seed + uint64(i)
	s.Epochs = epochs
	width := 1 + i%4
	s.MLPBatches = make([]int, width)
	for k := range s.MLPBatches {
		s.MLPBatches[k] = 4 + 4*(i%3)
	}
	if !real {
		// Synthetic runs never execute the spec; keep it minimal.
		s.Backend = "sim"
	}
	return s
}

func runPolicy(w io.Writer, policy string, cfg loadConfig) (policyResult, error) {
	var runner jobs.Runner = syntheticRunner{epochMS: cfg.epochMS, epochs: cfg.epochs}
	if cfg.real {
		runner = server.TrainRunner{}
	}
	sched, err := jobs.NewScheduler(jobs.Config{
		Pool:       jobs.PoolConfig{Devices: cfg.devices, Seed: cfg.seed, Jitter: 0.05},
		Runner:     runner,
		MaxQueue:   cfg.maxQueue,
		Policy:     policy,
		RetryAfter: 5 * time.Millisecond,
	})
	if err != nil {
		return policyResult{}, err
	}

	start := time.Now()
	deadline := start.Add(cfg.timeout)
	var next, retries atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.clients)
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.jobs {
					return
				}
				spec := jobSpec(i, cfg.epochs, cfg.seed, cfg.real)
				for {
					_, err := sched.Submit(spec)
					if err == nil {
						break
					}
					var qf *jobs.QueueFullError
					if !errors.As(err, &qf) {
						errCh <- fmt.Errorf("submit job %d: %w", i, err)
						return
					}
					retries.Add(1)
					if time.Now().After(deadline) {
						errCh <- fmt.Errorf("job %d still rejected at deadline", i)
						return
					}
					time.Sleep(qf.RetryAfter)
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return policyResult{}, err
	default:
	}

	// Wait for every submitted job to settle; the deadline doubles as the
	// deadlock detector.
	for {
		st := sched.Stats()
		if st.Done+st.Failed+st.Canceled >= cfg.jobs {
			break
		}
		if time.Now().After(deadline) {
			return policyResult{}, fmt.Errorf("deadlock: %d/%d settled at deadline (%+v)",
				st.Done+st.Failed+st.Canceled, cfg.jobs, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := sched.Drain(context.Background()); err != nil {
		return policyResult{}, fmt.Errorf("drain: %w", err)
	}
	st := sched.Stats()
	if st.Failed > 0 {
		return policyResult{}, fmt.Errorf("%d jobs failed", st.Failed)
	}
	res := policyResult{stats: st, retries: retries.Load(), elapsed: time.Since(start)}
	fmt.Fprintf(w, "policy %-8s %d jobs in %-12s admission mean %-10s max %-10s queue high-water %-3d retries %-5d plans %d\n",
		policy, st.Done, res.elapsed.Round(time.Millisecond),
		st.AdmissionMean.Round(time.Microsecond), st.AdmissionMax.Round(time.Microsecond),
		st.MaxQueueDepth, res.retries, st.PlanEvents)
	return res, nil
}

// httpSmoke drives a live cannikin-serve: concurrent submissions, one
// NDJSON stream read to completion, one cancellation, and a stats check.
func httpSmoke(w io.Writer, base string, n int, timeout time.Duration) error {
	if n < 3 {
		n = 3
	}
	client := &http.Client{Timeout: timeout}
	ids := make([]string, n)
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"mlp": true, "mlp_batches": [4, 4], "epochs": 2, "seed": %d}`, 100+i)
			resp, err := client.Post(base+"/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				msg, _ := io.ReadAll(resp.Body)
				errCh <- fmt.Errorf("submit %d: %d %s", i, resp.StatusCode, msg)
				return
			}
			var st struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				errCh <- err
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	fmt.Fprintf(w, "submitted %d jobs: %s\n", n, strings.Join(ids, " "))

	// Stream job 0's epochs to completion.
	resp, err := client.Get(base + "/jobs/" + ids[0] + "/stream")
	if err != nil {
		return err
	}
	epochs, final := 0, ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Type  string `json:"type"`
			State string `json:"state"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			resp.Body.Close()
			return fmt.Errorf("bad NDJSON %q: %w", sc.Text(), err)
		}
		switch ev.Type {
		case "epoch":
			epochs++
		case "state":
			final = ev.State
		}
	}
	resp.Body.Close()
	if final != string(jobs.StateDone) || epochs == 0 {
		return fmt.Errorf("stream of %s ended with state %q after %d epochs", ids[0], final, epochs)
	}
	fmt.Fprintf(w, "streamed %d epochs of %s to state %s\n", epochs, ids[0], final)

	// Cancel job 1 (it may already be done — both are valid terminal ends).
	req, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+ids[1], nil)
	if err != nil {
		return err
	}
	dresp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		return fmt.Errorf("cancel %s: %d", ids[1], dresp.StatusCode)
	}
	fmt.Fprintf(w, "canceled %s\n", ids[1])

	// Wait for everything to settle.
	deadline := time.Now().Add(timeout)
	for _, id := range ids {
		for {
			sresp, err := client.Get(base + "/jobs/" + id)
			if err != nil {
				return err
			}
			var st struct {
				State jobs.State `json:"state"`
				Error string     `json:"error"`
			}
			err = json.NewDecoder(sresp.Body).Decode(&st)
			sresp.Body.Close()
			if err != nil {
				return err
			}
			if st.State == jobs.StateFailed {
				return fmt.Errorf("job %s failed: %s", id, st.Error)
			}
			if st.State.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("job %s never settled", id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	sresp, err := client.Get(base + "/stats")
	if err != nil {
		return err
	}
	var stats jobs.Stats
	err = json.NewDecoder(sresp.Body).Decode(&stats)
	sresp.Body.Close()
	if err != nil {
		return err
	}
	if stats.Done+stats.Canceled < n {
		return fmt.Errorf("stats disagree: %+v", stats)
	}
	fmt.Fprintf(w, "stats: %d done, %d canceled, goodput granted %.2f\nPASS\n",
		stats.Done, stats.Canceled, stats.GoodputGranted)
	return nil
}
