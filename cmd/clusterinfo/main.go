// Command clusterinfo inspects the simulated testbeds: device composition,
// per-node compute models for a workload, memory-limited batch capacities,
// and the cluster's communication constants.
//
//	clusterinfo -cluster b -workload imagenet
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cannikin/internal/cluster"
	"cannikin/internal/rng"
	"cannikin/internal/trace"
	"cannikin/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clusterinfo:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("clusterinfo", flag.ContinueOnError)
	var (
		preset = fs.String("cluster", "b", `cluster preset: "a", "b", or "c"`)
		wlName = fs.String("workload", "cifar10", "workload whose compute model to show")
		seed   = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := cluster.Preset(*preset, rng.New(*seed))
	if err != nil {
		return err
	}
	wl, err := workload.Get(*wlName)
	if err != nil {
		return err
	}
	model, err := c.TrueModel(wl.Profile)
	if err != nil {
		return err
	}
	caps := c.Caps(wl.Profile)

	fmt.Fprintf(w, "Cluster %s: %d nodes, job %s (%s)\n\n", c.Name, c.N(), wl.Name, wl.ModelName)
	tab := trace.NewTable("node", "gpu", "cpu speed", "share", "max batch",
		"a(b)=q*b+s", "P(b)=k*b+m", "t(32) ms")
	for i, d := range c.Devices {
		nm := model.Nodes[i]
		tab.AddRowValues(
			fmt.Sprint(i), d.Model.Name, d.CPUSpeed, d.SpeedFraction, caps[i],
			fmt.Sprintf("%.3g*b+%.3g", nm.Q, nm.S),
			fmt.Sprintf("%.3g*b+%.3g", nm.K, nm.M),
			nm.Compute(32)*1e3,
		)
	}
	if err := tab.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\ncommunication: gamma=%.3f  To=%.2fms  Tu=%.2fms  TComm=%.2fms\n",
		model.Gamma, model.To*1e3, model.Tu*1e3, model.TComm()*1e3)
	fmt.Fprintf(w, "total batch capacity: %d samples\n", c.Capacity(wl.Profile))
	return nil
}
