package main

import (
	"strings"
	"testing"
)

func TestRunShowsClusterDetails(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-cluster", "b", "-workload", "imagenet"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"16 nodes", "A100", "Quadro RTX 6000", "gamma=", "total batch capacity"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunClusterA(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-cluster", "a", "-workload", "cifar10"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3 nodes") {
		t.Fatal("cluster A node count missing")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-cluster", "z"}, &sb); err == nil {
		t.Fatal("unknown cluster accepted")
	}
	if err := run([]string{"-workload", "nope"}, &sb); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}
