// Scheduler: submit a stream of training jobs to a shared pool of mixed
// GPUs and compare the two allocation policies from the paper's Discussion:
// heterogeneous allocations (possible because Cannikin trains efficiently
// on any mix) versus the homogeneous-only slices existing schedulers carve.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	"cannikin"
)

func main() {
	pool := []string{"A100", "A100", "V100", "V100", "RTX6000", "RTX6000", "RTX6000", "RTX6000"}
	jobs := []cannikin.JobSpec{
		{ID: "vision-1", Workload: "cifar10", GPUs: 4, SubmitAtSeconds: 0},
		{ID: "vision-2", Workload: "cifar10", GPUs: 4, SubmitAtSeconds: 1},
		{ID: "recsys-1", Workload: "movielens", GPUs: 3, SubmitAtSeconds: 2},
		{ID: "recsys-2", Workload: "movielens", GPUs: 3, SubmitAtSeconds: 3},
	}

	fmt.Printf("Pool: %v\n\n", pool)
	for _, policy := range []cannikin.AllocationPolicy{cannikin.PolicyHeterogeneous, cannikin.PolicyHomogeneous} {
		rep, err := cannikin.Schedule(cannikin.ScheduleConfig{
			PoolModels: pool,
			Policy:     policy,
			Jobs:       jobs,
			Seed:       5,
		})
		if err != nil {
			log.Fatalf("%s: %v", policy, err)
		}
		fmt.Printf("== %s policy ==\n", policy)
		for _, r := range rep.Records {
			fmt.Printf("  %-9s waited %7.1fs, ran %7.1fs on %v\n",
				r.ID, r.WaitSeconds, r.FinishSeconds-r.StartSeconds, r.Devices)
		}
		fmt.Printf("  makespan %.1fs, total queueing %.1fs\n\n",
			rep.MakespanSeconds, rep.TotalWaitSeconds)
	}
	fmt.Println("Mixed allocations keep the whole pool busy; the homogeneous")
	fmt.Println("policy serializes wide jobs onto the only 4-wide model slice.")
}
