// Real gradients: train an actual MLP with data-parallel workers holding
// *different* local batch sizes. The gradients are real (manual
// backpropagation), synchronized with the batch-weighted ring all-reduce of
// Eq. 9, and the gradient noise scale is estimated live from the workers'
// gradient norms with the Theorem 4.1 heterogeneous estimator.
//
//	go run ./examples/realgradients
package main

import (
	"fmt"
	"log"

	"cannikin"
)

func main() {
	cfg := cannikin.MLPConfig{
		// One fast GPU, one medium, two stragglers — like cluster A.
		LocalBatches: []int{48, 24, 12, 12},
		Hidden:       []int{48, 24},
		Dim:          10,
		Classes:      5,
		Samples:      6000,
		Epochs:       15,
		Seed:         3,
	}
	res, err := cannikin.TrainMLP(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d workers, global batch %d, %d synchronized steps\n\n",
		res.Workers, res.GlobalBatch, res.Steps)
	fmt.Println("epoch    loss  accuracy  GNS estimate")
	for i := range res.EpochLoss {
		fmt.Printf("%5d  %6.4f    %6.4f  %12.4g\n",
			i, res.EpochLoss[i], res.EpochAccuracy[i], res.NoiseEstimate[i])
	}
	fmt.Printf("\nfinal accuracy: %.4f\n", res.FinalAccuracy)
	fmt.Println("\nEvery replica stayed bit-identical through training: the")
	fmt.Println("batch-weighted all-reduce makes uneven shards exactly equivalent")
	fmt.Println("to single-node training on the concatenated batch (Eq. 9).")

	// The same run with the homogeneous (naive-average) GNS estimator, for
	// comparison: both are unbiased; Theorem 4.1 reduces variance.
	naive, err := cannikin.TrainMLP(func() cannikin.MLPConfig { c := cfg; c.NaiveGNS = true; return c }())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGNS estimate after training: weighted=%.4g  naive=%.4g\n",
		res.NoiseEstimate[len(res.NoiseEstimate)-1],
		naive.NoiseEstimate[len(naive.NoiseEstimate)-1])
}
