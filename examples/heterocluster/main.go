// Heterocluster: compare all five training systems on the paper's 16-GPU
// Cluster B (4x A100, 4x V100, 8x RTX 6000) across the five evaluation
// workloads — a compact rerun of Figure 8.
//
//	go run ./examples/heterocluster            # cifar10 + movielens (fast)
//	go run ./examples/heterocluster -all       # all five workloads
package main

import (
	"flag"
	"fmt"
	"log"

	"cannikin"
)

func main() {
	all := flag.Bool("all", false, "run all five workloads (slower)")
	flag.Parse()

	workloads := []string{"cifar10", "movielens"}
	if *all {
		workloads = []string{"cifar10", "imagenet", "librispeech", "movielens", "squad"}
	}
	systems := cannikin.Systems()

	fmt.Println("Convergence time on cluster B (simulated seconds; lower is better)")
	fmt.Printf("%-12s", "workload")
	for _, s := range systems {
		fmt.Printf("  %12s", s)
	}
	fmt.Println()

	for _, wl := range workloads {
		fmt.Printf("%-12s", wl)
		var base float64
		for _, sys := range systems {
			rep, err := cannikin.Train(cannikin.TrainConfig{
				Cluster:  cannikin.ClusterConfig{Preset: "b"},
				Workload: wl,
				System:   sys,
				Seed:     7,
			})
			if err != nil {
				log.Fatalf("%s/%s: %v", wl, sys, err)
			}
			if !rep.Converged {
				log.Fatalf("%s/%s did not converge", wl, sys)
			}
			if sys == cannikin.SystemCannikin {
				base = rep.ConvergeTime
			}
			cell := fmt.Sprintf("%.0fs (%.1fx)", rep.ConvergeTime, rep.ConvergeTime/base)
			fmt.Printf("  %12s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\nCannikin is the 1.0x baseline per row; larger factors are slower.")
}
