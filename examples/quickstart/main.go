// Quickstart: train ResNet-18/CIFAR-10 on the paper's 3-GPU heterogeneous
// Cluster A with Cannikin and print the adaptive batch-size trajectory.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cannikin"
)

func main() {
	report, err := cannikin.Train(cannikin.TrainConfig{
		Cluster:  cannikin.ClusterConfig{Preset: "a"}, // RTX A5000 + RTX A4000 + Quadro P4000
		Workload: "cifar10",
		System:   cannikin.SystemCannikin,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Trained %s on %s with %s\n\n", report.Workload, report.Cluster, report.System)
	fmt.Println("epoch  total-batch  local-batches        top1-acc")
	for i, e := range report.Epochs {
		// Print the first epochs and then every fifth.
		if i > 4 && i%5 != 0 && i != len(report.Epochs)-1 {
			continue
		}
		fmt.Printf("%5d  %11d  %-19s  %.4f\n", e.Epoch, e.TotalBatch, fmt.Sprint(e.LocalBatches), e.Metric)
	}
	fmt.Printf("\nconverged: %v in %.1f simulated seconds (scheduling overhead %.2f%%)\n",
		report.Converged, report.ConvergeTime, 100*report.OverheadFraction)
	fmt.Println("\nNote how the fast A5000 (node 0) carries the largest local batch and")
	fmt.Println("the global batch grows as the gradient noise scale rises.")
}
