// GPU sharing: reproduce the paper's Section 6 Cluster C experiment —
// sixteen *identical* RTX 6000 GPUs made heterogeneous by co-located dummy
// workloads that steal compute. Cannikin's advantage over the
// heterogeneity-blind AdaptDL persists under sharing-induced heterogeneity.
//
//	go run ./examples/gpusharing
package main

import (
	"fmt"
	"log"

	"cannikin"
)

func main() {
	// The preset uses the paper's fixed sharing pattern; a custom cluster
	// demonstrates the same effect with explicit shares.
	fmt.Println("== Preset cluster C (16x RTX 6000, shared) ==")
	compare(cannikin.ClusterConfig{Preset: "c"})

	fmt.Println("\n== Custom shared cluster (4x V100 at 100%/80%/60%/40%) ==")
	models := []string{"V100", "V100", "V100", "V100"}
	compare(cannikin.ClusterConfig{
		Models:        models,
		ComputeShares: []float64{1.0, 0.8, 0.6, 0.4},
	})
}

func compare(cluster cannikin.ClusterConfig) {
	var canTime float64
	for _, sys := range []cannikin.SystemKind{cannikin.SystemCannikin, cannikin.SystemAdaptDL, cannikin.SystemDDP} {
		rep, err := cannikin.Train(cannikin.TrainConfig{
			Cluster:  cluster,
			Workload: "cifar10",
			System:   sys,
			Seed:     11,
		})
		if err != nil {
			log.Fatal(err)
		}
		if sys == cannikin.SystemCannikin {
			canTime = rep.ConvergeTime
		}
		last := rep.Epochs[len(rep.Epochs)-1]
		fmt.Printf("%-12s converged in %7.1fs (%.2fx)  final local batches %v\n",
			sys, rep.ConvergeTime, rep.ConvergeTime/canTime, last.LocalBatches)
	}
}
