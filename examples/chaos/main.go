// Chaos: inject dynamic-heterogeneity events mid-training and watch each
// system respond. A scheduled compute-share drop plus seeded random churn
// perturb the simulated cluster; Cannikin detects the drift, re-profiles
// the changed nodes, and re-solves OptPerf, while DDP keeps its stale even
// split. The streaming OnEpoch hook prints events as they land, and a
// context cancels the final run early.
//
//	go run ./examples/chaos
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"cannikin"
)

func main() {
	chaosCfg := cannikin.ChaosConfig{
		// One scripted incident: node 0 loses three quarters of its compute
		// at epoch 6 (a co-located tenant arrives)...
		Events: []cannikin.ChaosEvent{
			{Epoch: 6, Node: 0, Kind: cannikin.ChaosComputeShare, Value: 0.25},
		},
		// ...plus background churn: each later epoch has a 20% chance of a
		// random perturbation, deterministic in the job seed.
		Churn:      0.2,
		FirstEpoch: 10,
		Horizon:    24,
	}

	fmt.Println("== Cannikin vs DDP under chaos (ImageNet, cluster A, B=128) ==")
	for _, sys := range []cannikin.SystemKind{cannikin.SystemCannikin, cannikin.SystemDDP} {
		rep, err := cannikin.Train(cannikin.TrainConfig{
			Cluster:    cannikin.ClusterConfig{Preset: "a"},
			Workload:   "imagenet",
			System:     sys,
			Seed:       7,
			MaxEpochs:  28,
			FixedBatch: 128,
			Chaos:      chaosCfg,
			OnEpoch: func(e cannikin.EpochReport) error {
				for _, ev := range e.Events {
					verb := "hits"
					if ev.Revert {
						verb = "recovers on"
					}
					fmt.Printf("  epoch %2d: %s %s node %d (value %.3g)\n",
						e.Epoch, ev.Kind, verb, ev.Node, ev.Value)
				}
				if e.Reprofiled > 0 {
					fmt.Printf("  epoch %2d: re-profiling %d drifted node(s)\n", e.Epoch, e.Reprofiled)
				}
				return nil
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		pre := rep.Epochs[5].AvgBatchTime
		final := rep.Epochs[len(rep.Epochs)-1].AvgBatchTime
		fmt.Printf("%-12s batch time before event %.4fs, final %.4fs (%.2fx)\n\n",
			sys, pre, final, final/pre)
	}

	// Cancellation: the same API honors a context at every epoch boundary.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := cannikin.TrainContext(ctx, cannikin.TrainConfig{
		Cluster:  cannikin.ClusterConfig{Preset: "a"},
		Workload: "cifar10",
		System:   cannikin.SystemCannikin,
		Seed:     7,
	})
	fmt.Printf("canceled run: errors.Is(err, context.Canceled) = %v\n", errors.Is(err, context.Canceled))
}
