package cannikin

import (
	"errors"
	"fmt"

	"cannikin/internal/allreduce"
	"cannikin/internal/data"
	"cannikin/internal/gns"
	"cannikin/internal/nn"
	"cannikin/internal/rng"
)

// MLPConfig configures a *real* data-parallel training run: an MLP trained
// on synthetic data across simulated workers with heterogeneous local batch
// sizes, batch-weighted ring all-reduce (Eq. 9), and the Theorem 4.1
// heterogeneous GNS estimator running on the actual gradients.
type MLPConfig struct {
	// LocalBatches are the per-worker local batch sizes; their count sets
	// the number of data-parallel workers.
	LocalBatches []int
	// Hidden lists hidden-layer widths (default [32]).
	Hidden []int
	// Dim, Classes, Samples shape the synthetic blob dataset
	// (defaults 8, 4, 4096).
	Dim, Classes, Samples int
	// Noise is the blob spread (default 0.6).
	Noise float64
	// Epochs is the number of training passes (default 10).
	Epochs int
	// LearningRate is the SGD step size (default 0.05).
	LearningRate float64
	// Momentum is the SGD momentum (default 0.9).
	Momentum float64
	// Seed drives all randomness.
	Seed uint64
	// NaiveGNS switches the GNS aggregation to plain averaging (the
	// homogeneous-cluster rule) instead of Theorem 4.1 weights.
	NaiveGNS bool
	// GrowthEpoch, when positive, doubles every local batch size at that
	// epoch — adaptive batch-size training in miniature. The learning rate
	// is rescaled by Scaler.
	GrowthEpoch int
	// Scaler picks the LR rescaling rule on batch growth: "adascale"
	// (gain damped by the live GNS estimate), "sqrt", "linear", or ""
	// (keep the learning rate).
	Scaler string
}

func (c *MLPConfig) defaults() error {
	if len(c.LocalBatches) == 0 {
		return errors.New("cannikin: MLPConfig needs at least one worker batch")
	}
	for i, b := range c.LocalBatches {
		if b < 1 {
			return fmt.Errorf("cannikin: worker %d local batch %d", i, b)
		}
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{32}
	}
	if c.Dim == 0 {
		c.Dim = 8
	}
	if c.Classes == 0 {
		c.Classes = 4
	}
	if c.Samples == 0 {
		c.Samples = 4096
	}
	if c.Noise == 0 {
		c.Noise = 0.6
	}
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.Dim < 1 || c.Classes < 2 || c.Samples < 1 || c.Epochs < 1 || c.LearningRate <= 0 {
		return fmt.Errorf("cannikin: invalid MLP config %+v", *c)
	}
	return nil
}

// MLPResult reports a real training run.
type MLPResult struct {
	// Workers is the number of data-parallel replicas.
	Workers int
	// GlobalBatch is the per-step total batch (sum of local batches).
	GlobalBatch int
	// EpochLoss and EpochAccuracy are measured on the full dataset after
	// each epoch.
	EpochLoss     []float64
	EpochAccuracy []float64
	// NoiseEstimate is the smoothed gradient noise scale after each epoch,
	// estimated from the real per-worker gradient norms.
	NoiseEstimate []float64
	// BatchSchedule and LRSchedule record the per-epoch global batch size
	// and learning rate (they change when GrowthEpoch fires).
	BatchSchedule []int
	LRSchedule    []float64
	// FinalAccuracy is the last epoch's accuracy.
	FinalAccuracy float64
	// Steps is the total number of synchronized steps executed.
	Steps int
}

// TrainMLP runs real heterogeneous data-parallel training: every worker
// holds a replica of the model, computes gradients on its (differently
// sized) shard, and the replicas synchronize with a batch-weighted ring
// all-reduce. Replica consistency is enforced, so the run is exactly
// equivalent to single-node training on the concatenated batch.
func TrainMLP(cfg MLPConfig) (*MLPResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	ds, err := data.SyntheticBlobs(cfg.Samples, cfg.Dim, cfg.Classes, cfg.Noise, src)
	if err != nil {
		return nil, err
	}
	loader := data.NewHeteroLoader(ds, src)

	nWorkers := len(cfg.LocalBatches)
	globalBatch := 0
	for _, b := range cfg.LocalBatches {
		globalBatch += b
	}
	sizes := append([]int{cfg.Dim}, cfg.Hidden...)
	sizes = append(sizes, cfg.Classes)

	// All replicas start from identical weights, synchronized the way DDP
	// does it: rank 0 broadcasts its initialization over the ring.
	replicas := make([]*nn.Network, nWorkers)
	weightBufs := make([][]float64, nWorkers)
	for i := range replicas {
		replicas[i] = nn.NewMLP(sizes, src.Split(fmt.Sprintf("init-%d", i)))
		weightBufs[i] = replicas[i].FlatWeights()
	}
	if err := allreduce.Broadcast(weightBufs, 0); err != nil {
		return nil, err
	}
	for i := range replicas {
		replicas[i].SetFlatWeights(weightBufs[i])
	}
	opts := make([]*nn.SGD, nWorkers)
	for i := range opts {
		opts[i] = nn.NewSGD(cfg.Momentum, 0)
	}

	tracker := gns.NewTracker(0.1)
	res := &MLPResult{Workers: nWorkers, GlobalBatch: globalBatch}
	weights := make([]float64, nWorkers)
	for i, b := range cfg.LocalBatches {
		weights[i] = float64(b) / float64(globalBatch)
	}

	fullX, fullLabels := ds.Batch(identity(ds.Len()))

	var scaler nn.LRScaler
	switch cfg.Scaler {
	case "adascale":
		scaler = nn.AdaScale{}
	case "sqrt":
		scaler = nn.SquareRoot{}
	case "linear":
		scaler = nn.LinearScale{}
	case "":
	default:
		return nil, fmt.Errorf("cannikin: unknown LR scaler %q", cfg.Scaler)
	}

	localBatches := append([]int(nil), cfg.LocalBatches...)
	baseBatch := globalBatch
	lr := cfg.LearningRate

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.GrowthEpoch > 0 && epoch == cfg.GrowthEpoch {
			for i := range localBatches {
				localBatches[i] *= 2
			}
			globalBatch *= 2
			for i, b := range localBatches {
				weights[i] = float64(b) / float64(globalBatch)
			}
			if scaler != nil {
				lr = scaler.Scale(cfg.LearningRate, globalBatch, baseBatch, tracker.Noise())
			}
		}
		stepsPerEpoch := cfg.Samples / globalBatch
		if stepsPerEpoch < 1 {
			stepsPerEpoch = 1
		}
		for s := 0; s < stepsPerEpoch; s++ {
			xs, labels, err := loader.NextGlobalBatch(localBatches)
			if err != nil {
				return nil, err
			}
			grads := make([][]float64, nWorkers)
			sample := gns.Sample{
				Batches:      make([]int, nWorkers),
				LocalSqNorms: make([]float64, nWorkers),
			}
			for i, net := range replicas {
				net.ZeroGrad()
				logits := net.Forward(xs[i])
				_, dlogits := nn.SoftmaxCrossEntropy(logits, labels[i])
				net.Backward(dlogits)
				grads[i] = net.FlatGrads()
				sample.Batches[i] = xs[i].Rows()
				sample.LocalSqNorms[i] = sqNorm(grads[i])
			}
			// Batch-weighted ring all-reduce (Eq. 9). Weights must track
			// the actual shard sizes (the final partial batch shrinks).
			stepWeights := weights
			if got := sum(sample.Batches); got != globalBatch {
				stepWeights = make([]float64, nWorkers)
				for i, b := range sample.Batches {
					stepWeights[i] = float64(b) / float64(got)
				}
			}
			if err := allreduce.AllReduce(grads, stepWeights); err != nil {
				return nil, err
			}
			sample.GlobalSqNorm = sqNorm(grads[0])
			if nWorkers >= 2 {
				var est gns.Estimate
				var gerr error
				if cfg.NaiveGNS {
					est, gerr = gns.EstimateNaive(sample)
				} else {
					est, gerr = gns.EstimateOptimal(sample)
				}
				if gerr == nil {
					tracker.Observe(est)
				}
			}
			for i, net := range replicas {
				net.SetFlatGrads(grads[i])
				opts[i].Step(net.Params(), lr)
			}
			res.Steps++
		}
		logits := replicas[0].Forward(fullX)
		loss, _ := nn.SoftmaxCrossEntropy(logits, fullLabels)
		res.EpochLoss = append(res.EpochLoss, loss)
		res.EpochAccuracy = append(res.EpochAccuracy, nn.Accuracy(logits, fullLabels))
		res.NoiseEstimate = append(res.NoiseEstimate, tracker.Noise())
		res.BatchSchedule = append(res.BatchSchedule, globalBatch)
		res.LRSchedule = append(res.LRSchedule, lr)
	}
	res.FinalAccuracy = res.EpochAccuracy[len(res.EpochAccuracy)-1]

	// Replica-consistency invariant: weighted all-reduce keeps every
	// replica bit-identical.
	ref := replicas[0].FlatWeights()
	for i := 1; i < nWorkers; i++ {
		if d := maxAbsDiff(ref, replicas[i].FlatWeights()); d > 1e-9 {
			return nil, fmt.Errorf("cannikin: replica %d diverged by %g", i, d)
		}
	}
	return res, nil
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sqNorm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return s
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
