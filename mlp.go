package cannikin

import (
	"context"
	"errors"
	"fmt"

	"cannikin/internal/allreduce"
	"cannikin/internal/data"
	"cannikin/internal/nn"
	"cannikin/internal/rng"
	"cannikin/internal/runtime"
)

// MLPConfig configures a *real* data-parallel training run: an MLP trained
// on synthetic data across workers with heterogeneous local batch sizes,
// batch-weighted ring all-reduce (Eq. 9), and the Theorem 4.1
// heterogeneous GNS estimator running on the actual gradients.
type MLPConfig struct {
	// LocalBatches are the per-worker local batch sizes; their count sets
	// the number of data-parallel workers.
	LocalBatches []int
	// Hidden lists hidden-layer widths (default [32]).
	Hidden []int
	// Dim, Classes, Samples shape the synthetic blob dataset
	// (defaults 8, 4, 4096).
	Dim, Classes, Samples int
	// Noise is the blob spread (default 0.6).
	Noise float64
	// Epochs is the number of training passes (default 10).
	Epochs int
	// LearningRate is the SGD step size (default 0.05).
	LearningRate float64
	// Momentum is the SGD momentum (default 0.9).
	Momentum float64
	// Seed drives all randomness.
	Seed uint64
	// NaiveGNS switches the GNS aggregation to plain averaging (the
	// homogeneous-cluster rule) instead of Theorem 4.1 weights.
	NaiveGNS bool
	// GrowthEpoch, when positive, doubles every local batch size at that
	// epoch — adaptive batch-size training in miniature. The learning rate
	// is rescaled by Scaler.
	GrowthEpoch int
	// Scaler picks the LR rescaling rule on batch growth: "adascale"
	// (gain damped by the live GNS estimate), "sqrt", "linear", or ""
	// (keep the learning rate).
	Scaler string
	// Backend selects the execution engine: "sim" (default) runs the
	// workers sequentially in one goroutine; "live" runs each worker as a
	// concurrent goroutine with a real overlapped bucketed ring all-reduce
	// and wall-clock phase profiling. Both backends produce bitwise
	// identical model weights for the same seed.
	Backend string
	// BucketBytes caps the gradient bucket size for the ring all-reduce. A
	// positive value is an explicit per-bucket byte cap (PyTorch DDP uses
	// 25 MB); 0 (the default) sizes buckets adaptively from the model size
	// and worker count.
	BucketBytes int
	// CommMode selects the live backend's worker-goroutine layout: "auto"
	// (default — merged when workers already saturate the host, overlapped
	// otherwise), "overlap" (dedicated comm goroutine per worker), or
	// "merged" (single event-driven goroutine per worker). Scheduling only:
	// weights are bitwise-identical in every mode.
	CommMode string
	// KernelShards, when positive, shards every matmul across that many
	// goroutines by contiguous output rows (1 = serial, the default).
	// Parallel and serial kernels are bitwise identical, so this is purely
	// a wall-clock knob; the trained weights never change.
	KernelShards int
	// Allreduce selects the collective algorithm reducing gradient buckets:
	// "" or "ring" (default), "hd" (recursive halving-doubling), "pipeline"
	// (chunk-pipelined ring), or "auto" (cost-model argmin per bucket).
	// Each algorithm fixes its own summation order, so for three or more
	// workers different algorithms legitimately differ in the last bits —
	// but any one algorithm is bitwise-identical across backends,
	// transports, and processes.
	Allreduce string
	// LinkAlpha and LinkBeta price "auto": the fitted per-hop link cost
	// t(b) = LinkAlpha + LinkBeta·b in seconds, typically fed back from a
	// previous run's profile (MLPProfile.LinkAlpha/LinkBeta). Both zero
	// means unfitted — auto falls back to calibrated size thresholds.
	LinkAlpha, LinkBeta float64
	// InitWeights, when set, is the flat weight vector every replica starts
	// from instead of random initialization — the recovery entry point:
	// resuming from an EvictionRecord's Checkpoint on the survivor cluster
	// reproduces the post-eviction trajectory bitwise.
	InitWeights []float64
	// InitVelocity, when set, seeds every replica's SGD momentum from this
	// flat vector (same layout and length as InitWeights) — the optimizer
	// half of a checkpoint. A run resumed from a JoinRecord needs both to
	// reproduce the post-join trajectory bitwise.
	InitVelocity []float64
	// Resume, when non-empty, derives the run's randomness from the seed's
	// child stream with this label instead of the root stream. Elastic
	// differential runs use it to land on the exact stream an incarnation
	// trained with: "join-<n>" for the n-th hot-join, "recovery-<n>" for
	// the n-th eviction (n counting from 1).
	Resume string
	// Joins schedules worker hot-joins at epoch boundaries (live or sim
	// single-process runs; worker mode runs one process generation per
	// membership instead).
	Joins []JoinSpec
	// Autoscale enables the goodput-driven autoscaler, which grows the
	// cluster through the hot-join path and shrinks it through the
	// eviction path at epoch boundaries.
	Autoscale *AutoscaleConfig
	// Fault enables deterministic fault injection and fault tolerance
	// (live backend only).
	Fault *FaultConfig
	// OnEpoch, when set, streams each completed epoch's observations in
	// order, from the driver goroutine. Returning an error aborts the run
	// with that error wrapped. The hook never changes the trained weights:
	// it observes the fully synchronized model between steps.
	OnEpoch func(MLPEpoch) error
}

// MLPEpoch is one completed epoch of a real training run, streamed through
// MLPConfig.OnEpoch.
type MLPEpoch struct {
	// Epoch is the epoch index; Workers the live replica count (shrinks
	// after an eviction).
	Epoch   int
	Workers int
	// GlobalBatch and LearningRate are the values the epoch trained with.
	GlobalBatch  int
	LearningRate float64
	// Loss and Accuracy are measured on the full dataset after the epoch;
	// Noise is the smoothed heterogeneous GNS estimate.
	Loss, Accuracy, Noise float64
	// Steps is the cumulative committed step count at epoch end.
	Steps int
}

func (c *MLPConfig) defaults() error {
	if len(c.LocalBatches) == 0 {
		return errors.New("cannikin: MLPConfig needs at least one worker batch")
	}
	for i, b := range c.LocalBatches {
		if b < 1 {
			return fmt.Errorf("cannikin: worker %d local batch %d", i, b)
		}
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{32}
	}
	if c.Dim == 0 {
		c.Dim = 8
	}
	if c.Classes == 0 {
		c.Classes = 4
	}
	if c.Samples == 0 {
		c.Samples = 4096
	}
	if c.Noise == 0 {
		c.Noise = 0.6
	}
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.Dim < 1 || c.Classes < 2 || c.Samples < 1 || c.Epochs < 1 || c.LearningRate <= 0 {
		return fmt.Errorf("cannikin: invalid MLP config %+v", *c)
	}
	if c.KernelShards < 0 {
		return fmt.Errorf("cannikin: kernel shards %d", c.KernelShards)
	}
	switch c.Backend {
	case "", "sim", "live":
	default:
		return fmt.Errorf("cannikin: unknown backend %q", c.Backend)
	}
	switch c.CommMode {
	case "", "auto", "overlap", "merged":
	default:
		return fmt.Errorf("cannikin: unknown comm mode %q", c.CommMode)
	}
	if _, err := allreduce.ParseAlgorithm(c.Allreduce); err != nil {
		return fmt.Errorf("cannikin: %w", err)
	}
	if c.LinkAlpha < 0 || c.LinkBeta < 0 {
		return fmt.Errorf("cannikin: negative link constants (alpha=%g, beta=%g)", c.LinkAlpha, c.LinkBeta)
	}
	return nil
}

// MLPResult reports a real training run.
type MLPResult struct {
	// Backend is the engine that executed the run ("sim" or "live").
	Backend string
	// Workers is the number of data-parallel replicas.
	Workers int
	// GlobalBatch is the per-step total batch (sum of local batches).
	GlobalBatch int
	// EpochLoss and EpochAccuracy are measured on the full dataset after
	// each epoch.
	EpochLoss     []float64
	EpochAccuracy []float64
	// NoiseEstimate is the smoothed gradient noise scale after each epoch,
	// estimated from the real per-worker gradient norms.
	NoiseEstimate []float64
	// BatchSchedule and LRSchedule record the per-epoch global batch size
	// and learning rate (they change when GrowthEpoch fires).
	BatchSchedule []int
	LRSchedule    []float64
	// FinalAccuracy is the last epoch's accuracy.
	FinalAccuracy float64
	// Steps is the total number of synchronized steps executed.
	Steps int
	// FinalWeights is the trained flat weight vector, identical bit for
	// bit on every replica and across backends.
	FinalWeights []float64
	// Profile summarizes the measured wall-clock phases (live backend
	// only; nil for sim). After an eviction it covers the final survivor
	// cluster.
	Profile *MLPProfile
	// Evictions records every coordinated worker eviction (fault-tolerant
	// and autoscaled runs).
	Evictions []EvictionRecord
	// Joins records every committed worker hot-join (elastic runs only).
	Joins []JoinRecord
	// FinalVelocity is the final SGD momentum state, bitwise-identical on
	// every replica — together with FinalWeights it is a complete training
	// checkpoint.
	FinalVelocity []float64
	// FaultEvents lists the injected faults workers actually consumed, in
	// step order, using the unified chaos/fault event-record type.
	FaultEvents []ChaosEventRecord
}

// MLPProfile is the public summary of a live run's measured timing: the
// quantities the paper's online profiler feeds into OptPerf.
type MLPProfile struct {
	// Workers is the rank count; Buckets the gradient buckets per step.
	Workers, Buckets int
	// OverlapObserved reports that in every multi-bucket step the first
	// bucket entered the ring strictly before backprop finished and before
	// the last bucket completed — communication really overlapped compute.
	OverlapObserved bool
	// Gamma, To, Tu are the fitted cluster communication constants; A and
	// Backprop the per-worker mean phase times in seconds.
	Gamma, To, Tu float64
	A, Backprop   []float64
	// FitOK says the perfmodel fit succeeded; FitError is its worst
	// per-node mean relative residual.
	FitOK    bool
	FitError float64
	// LinkAlpha and LinkBeta are the fitted per-hop link constants
	// (t(b) = α + β·b seconds) when LinkFitOK — ready to feed back into
	// MLPConfig.LinkAlpha/LinkBeta so "-allreduce auto" prices schedules
	// from this cluster's own measurements. The fit needs per-bucket
	// payload-size variation; LinkFitOK is false when it was degenerate.
	LinkFitOK           bool
	LinkAlpha, LinkBeta float64
}

// TrainMLP runs real heterogeneous data-parallel training: every worker
// holds a replica of the model, computes gradients on its (differently
// sized) shard, and the replicas synchronize with a batch-weighted
// bucketed ring all-reduce. Replica consistency is enforced, so the run is
// exactly equivalent to single-node training on the concatenated batch.
//
// The default "sim" backend executes workers sequentially; Backend "live"
// executes them concurrently with overlapped communication and returns a
// measured Profile. The trained weights are bitwise identical either way.
//
// TrainMLP is TrainMLPContext with a background context.
func TrainMLP(cfg MLPConfig) (*MLPResult, error) {
	return TrainMLPContext(context.Background(), cfg)
}

// TrainMLPContext is TrainMLP with cancellation: ctx is checked at every
// step and epoch boundary, and a canceled context aborts the run with the
// context's error wrapped (test with errors.Is). Cancellation is clean —
// the run stops between committed steps and every worker goroutine is
// joined before the call returns.
func TrainMLPContext(ctx context.Context, cfg MLPConfig) (*MLPResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rc, err := cfg.lowerRuntime()
	if err != nil {
		return nil, err
	}
	if ctx != nil && ctx != context.Background() {
		rc.Ctx = ctx
	}
	if cfg.Fault != nil {
		// The fault rank space spans the initial cluster plus every
		// scheduled joiner: churn can target a worker that has not joined
		// yet, and its events lie dormant until the join.
		if rc.Fault, err = cfg.Fault.lower(len(cfg.LocalBatches)+len(cfg.Joins), cfg.Seed); err != nil {
			return nil, err
		}
	}
	r, err := runtime.Train(*rc)
	if err != nil {
		return nil, err
	}
	return mlpResultOf(r), nil
}

// lowerRuntime translates a defaulted MLPConfig into the internal runtime
// config: scaler lookup, synthetic dataset, layer sizes, rng source. Fault
// lowering stays with the callers (worker mode rejects faults).
func (cfg *MLPConfig) lowerRuntime() (*runtime.Config, error) {
	var scaler nn.LRScaler
	switch cfg.Scaler {
	case "adascale":
		scaler = nn.AdaScale{}
	case "sqrt":
		scaler = nn.SquareRoot{}
	case "linear":
		scaler = nn.LinearScale{}
	case "":
	default:
		return nil, fmt.Errorf("cannikin: unknown LR scaler %q", cfg.Scaler)
	}

	src := rng.New(cfg.Seed)
	ds, err := data.SyntheticBlobs(cfg.Samples, cfg.Dim, cfg.Classes, cfg.Noise, src)
	if err != nil {
		return nil, err
	}
	// Resume lands on a child stream AFTER the dataset is built, so a
	// resumed run reproduces the same data but draws the incarnation's
	// randomness — the stream a join or recovery actually trained with.
	runSrc := src
	if cfg.Resume != "" {
		runSrc = src.Split(cfg.Resume)
	}
	joins, err := lowerJoins(cfg.Joins)
	if err != nil {
		return nil, err
	}
	elastic, err := cfg.Autoscale.lower()
	if err != nil {
		return nil, err
	}
	sizes := append([]int{cfg.Dim}, cfg.Hidden...)
	sizes = append(sizes, cfg.Classes)

	rc := &runtime.Config{
		Backend:      cfg.Backend,
		LocalBatches: cfg.LocalBatches,
		Sizes:        sizes,
		Epochs:       cfg.Epochs,
		LearningRate: cfg.LearningRate,
		Momentum:     cfg.Momentum,
		GrowthEpoch:  cfg.GrowthEpoch,
		Scaler:       scaler,
		NaiveGNS:     cfg.NaiveGNS,
		BucketBytes:  cfg.BucketBytes,
		CommMode:     cfg.CommMode,
		KernelShards: cfg.KernelShards,
		Allreduce:    cfg.Allreduce,
		LinkAlpha:    cfg.LinkAlpha,
		LinkBeta:     cfg.LinkBeta,
		Dataset:      ds,
		Src:          runSrc,
		InitWeights:  cfg.InitWeights,
		InitVelocity: cfg.InitVelocity,
		Joins:        joins,
		Elastic:      elastic,
	}
	if cfg.OnEpoch != nil {
		hook := cfg.OnEpoch
		rc.OnEpoch = func(e runtime.EpochObs) error {
			return hook(MLPEpoch{
				Epoch:        e.Epoch,
				Workers:      e.Workers,
				GlobalBatch:  e.GlobalBatch,
				LearningRate: e.LearningRate,
				Loss:         e.Loss,
				Accuracy:     e.Accuracy,
				Noise:        e.Noise,
				Steps:        e.Steps,
			})
		}
	}
	return rc, nil
}

// mlpResultOf converts the internal result to the public one.
func mlpResultOf(r *runtime.Result) *MLPResult {
	res := &MLPResult{
		Backend:       r.Backend,
		Workers:       r.Workers,
		GlobalBatch:   r.GlobalBatch,
		EpochLoss:     r.EpochLoss,
		EpochAccuracy: r.EpochAccuracy,
		NoiseEstimate: r.NoiseEstimate,
		BatchSchedule: r.BatchSchedule,
		LRSchedule:    r.LRSchedule,
		FinalAccuracy: r.FinalAccuracy,
		Steps:         r.Steps,
		FinalWeights:  r.FinalWeights,
		FinalVelocity: r.FinalVelocity,
	}
	for _, jr := range r.Joins {
		res.Joins = append(res.Joins, joinRecordOf(jr))
	}
	if r.Profile != nil {
		res.Profile = summarizeProfile(r.Profile)
	}
	for _, ev := range r.Evictions {
		res.Evictions = append(res.Evictions, EvictionRecord{
			Epoch:           ev.Epoch,
			Step:            ev.Step,
			Workers:         append([]int(nil), ev.Workers...),
			Reason:          ev.Reason,
			Survivors:       append([]int(nil), ev.Survivors...),
			SurvivorBatches: append([]int(nil), ev.SurvivorBatches...),
			Checkpoint:      ev.Checkpoint,
			Replanned:       ev.Replanned,
		})
	}
	for _, f := range r.FaultEvents {
		res.FaultEvents = append(res.FaultEvents, faultEventRecords(f)...)
	}
	return res
}

// summarizeProfile reduces the raw per-step samples to the public summary.
func summarizeProfile(p *runtime.Profile) *MLPProfile {
	out := &MLPProfile{
		Workers:         p.Workers,
		OverlapObserved: p.OverlapObserved(),
		A:               make([]float64, p.Workers),
		Backprop:        make([]float64, p.Workers),
	}
	if len(p.Samples) > 0 {
		out.Buckets = p.Samples[0].Buckets
	}
	for w := 0; w < p.Workers; w++ {
		ws := p.WorkerSamples(w)
		for _, s := range ws {
			out.A[w] += s.A()
			out.Backprop[w] += s.Backprop
		}
		if len(ws) > 0 {
			out.A[w] /= float64(len(ws))
			out.Backprop[w] /= float64(len(ws))
		}
	}
	if model, fitErr, err := p.FitModel(nil); err == nil {
		out.FitOK = true
		out.FitError = fitErr
		out.Gamma = model.Gamma
		out.To = model.To
		out.Tu = model.Tu
	}
	if link, err := p.LinkFit(); err == nil {
		out.LinkFitOK = true
		out.LinkAlpha = link.Alpha
		out.LinkBeta = link.Beta
	}
	return out
}
