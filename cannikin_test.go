package cannikin

import (
	"math"
	"testing"
)

func TestTrainPresetCluster(t *testing.T) {
	rep, err := Train(TrainConfig{
		Cluster:  ClusterConfig{Preset: "a"},
		Workload: "cifar10",
		System:   SystemCannikin,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("did not converge")
	}
	if rep.MetricName != "top1-acc" {
		t.Fatalf("metric %q", rep.MetricName)
	}
	if rep.ConvergeTime <= 0 || rep.TotalTime != rep.ConvergeTime {
		t.Fatalf("times: converge %v total %v", rep.ConvergeTime, rep.TotalTime)
	}
	if len(rep.Epochs) == 0 {
		t.Fatal("no epochs recorded")
	}
	final := rep.Epochs[len(rep.Epochs)-1]
	if final.Metric < 0.93 {
		t.Fatalf("final metric %v", final.Metric)
	}
	if rep.OverheadFraction <= 0 || rep.OverheadFraction > 0.2 {
		t.Fatalf("overhead fraction %v", rep.OverheadFraction)
	}
}

func TestTrainAllSystems(t *testing.T) {
	for _, kind := range Systems() {
		rep, err := Train(TrainConfig{
			Cluster:  ClusterConfig{Preset: "a"},
			Workload: "cifar10",
			System:   kind,
			Seed:     2,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !rep.Converged {
			t.Fatalf("%s did not converge", kind)
		}
		if rep.System != string(kind) {
			t.Fatalf("report system %q for %q", rep.System, kind)
		}
	}
}

func TestTrainCustomCluster(t *testing.T) {
	rep, err := Train(TrainConfig{
		Cluster: ClusterConfig{
			Models:        []string{"H100", "V100", "P100"},
			CPUSpeeds:     []float64{1.5, 1.0, 0.7},
			ComputeShares: []float64{1, 1, 0.8},
		},
		Workload: "cifar10",
		System:   SystemCannikin,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("custom cluster did not converge")
	}
	// Late epochs: the H100 node should carry the most work.
	last := rep.Epochs[len(rep.Epochs)-1]
	if last.LocalBatches[0] <= last.LocalBatches[2] {
		t.Fatalf("H100 %d <= P100 %d", last.LocalBatches[0], last.LocalBatches[2])
	}
}

func TestTrainConfigValidation(t *testing.T) {
	base := TrainConfig{Cluster: ClusterConfig{Preset: "a"}, Workload: "cifar10", System: SystemCannikin}

	bad := base
	bad.Cluster = ClusterConfig{}
	if _, err := Train(bad); err == nil {
		t.Fatal("empty cluster accepted")
	}
	bad = base
	bad.Cluster = ClusterConfig{Preset: "a", Models: []string{"A100"}}
	if _, err := Train(bad); err == nil {
		t.Fatal("preset+models accepted")
	}
	bad = base
	bad.Workload = "mnist"
	if _, err := Train(bad); err == nil {
		t.Fatal("unknown workload accepted")
	}
	bad = base
	bad.System = "magic"
	if _, err := Train(bad); err == nil {
		t.Fatal("unknown system accepted")
	}
	bad = base
	bad.System = SystemAdaptDL
	bad.FixedBatch = 64
	if _, err := Train(bad); err == nil {
		t.Fatal("AdaptDL with fixed batch accepted")
	}
	bad = base
	bad.Cluster = ClusterConfig{Models: []string{"A100"}, CPUSpeeds: []float64{1, 1}}
	if _, err := Train(bad); err == nil {
		t.Fatal("mismatched CPU speeds accepted")
	}
	bad = base
	bad.Cluster = ClusterConfig{Models: []string{"A100"}, ComputeShares: []float64{2}}
	if _, err := Train(bad); err == nil {
		t.Fatal("invalid share accepted")
	}
}

func TestTrainFixedBatch(t *testing.T) {
	rep, err := Train(TrainConfig{
		Cluster:    ClusterConfig{Preset: "a"},
		Workload:   "cifar10",
		System:     SystemCannikin,
		Seed:       4,
		MaxEpochs:  6,
		FixedBatch: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Epochs {
		if e.TotalBatch != 128 {
			t.Fatalf("epoch %d batch %d, want 128", e.Epoch, e.TotalBatch)
		}
	}
}

func TestWorkloadsCatalog(t *testing.T) {
	ws := Workloads()
	if len(ws) != 5 {
		t.Fatalf("%d workloads", len(ws))
	}
	found := map[string]bool{}
	for _, w := range ws {
		found[w.Name] = true
		if w.TargetValue <= 0 || w.InitBatch <= 0 {
			t.Fatalf("bad workload info %+v", w)
		}
	}
	for _, name := range []string{"imagenet", "cifar10", "librispeech", "squad", "movielens"} {
		if !found[name] {
			t.Fatalf("missing %s", name)
		}
	}
}

func TestGPUModelsCatalog(t *testing.T) {
	gs := GPUModels()
	if len(gs) < 8 {
		t.Fatalf("%d GPU models", len(gs))
	}
	for _, g := range gs {
		if g.FP16TFLOPS <= 0 || g.MemoryGB <= 0 {
			t.Fatalf("bad GPU info %+v", g)
		}
	}
}

func TestSolveOptPerfPublicAPI(t *testing.T) {
	m := PerfModel{
		Nodes: []NodePerf{
			{Q: 0.0002, S: 0.004, K: 0.0004, M: 0.002},
			{Q: 0.0004, S: 0.005, K: 0.0008, M: 0.003},
			{Q: 0.0008, S: 0.006, K: 0.0016, M: 0.004},
		},
		Gamma: 0.25, To: 0.01, Tu: 0.004,
	}
	alloc, err := SolveOptPerf(m, 120)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, b := range alloc.LocalBatches {
		sum += b
	}
	if sum != 120 || alloc.TotalBatch != 120 {
		t.Fatalf("allocation sums to %d", sum)
	}
	if alloc.Time <= 0 {
		t.Fatal("non-positive OptPerf")
	}
	if alloc.LocalBatches[0] <= alloc.LocalBatches[2] {
		t.Fatalf("fast node underloaded: %v", alloc.LocalBatches)
	}
	rsum := 0.0
	for _, r := range alloc.Ratios {
		rsum += r
	}
	if math.Abs(rsum-1) > 1e-12 {
		t.Fatalf("ratios sum %v", rsum)
	}
	if len(alloc.ComputeBound) != 3 {
		t.Fatal("missing bottleneck states")
	}
	if _, err := SolveOptPerf(m, 1); err == nil {
		t.Fatal("infeasible batch accepted")
	}
}

func TestEstimateGNSPublicAPI(t *testing.T) {
	// E[|g_i|^2] = |G|^2 + tr(Σ)/b: feed exact expectations, expect exact
	// recovery (the estimators are linear).
	gsq, tr := 4.0, 100.0
	batches := []int{10, 20, 30}
	locals := make([]float64, 3)
	total := 60.0
	for i, b := range batches {
		locals[i] = gsq + tr/float64(b)
	}
	global := gsq + tr/total
	est, err := EstimateGNS(batches, locals, global)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.GradSq-gsq) > 1e-9 || math.Abs(est.TraceVar-tr) > 1e-9 {
		t.Fatalf("estimate %+v", est)
	}
	if math.Abs(est.Noise-tr/gsq) > 1e-9 {
		t.Fatalf("noise %v", est.Noise)
	}
	if _, err := EstimateGNS([]int{10}, []float64{1}, 1); err == nil {
		t.Fatal("single node accepted")
	}
}
