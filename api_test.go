package cannikin

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

func TestSentinelErrors(t *testing.T) {
	base := TrainConfig{
		Cluster:  ClusterConfig{Preset: "a"},
		Workload: "cifar10",
		System:   SystemCannikin,
	}

	cfg := base
	cfg.System = "no-such-system"
	if _, err := Train(cfg); !errors.Is(err, ErrUnknownSystem) {
		t.Fatalf("unknown system: %v", err)
	}

	cfg = base
	cfg.Cluster = ClusterConfig{Preset: "a", Models: []string{"v100"}}
	if _, err := Train(cfg); !errors.Is(err, ErrBadCluster) {
		t.Fatalf("preset+models: %v", err)
	}
	cfg.Cluster = ClusterConfig{}
	if _, err := Train(cfg); !errors.Is(err, ErrBadCluster) {
		t.Fatalf("empty cluster: %v", err)
	}
	cfg.Cluster = ClusterConfig{Preset: "no-such-preset"}
	if _, err := Train(cfg); !errors.Is(err, ErrBadCluster) {
		t.Fatalf("bad preset: %v", err)
	}

	for _, b := range []int{-1, 1, 1 << 30} {
		cfg = base
		cfg.FixedBatch = b
		if _, err := Train(cfg); !errors.Is(err, ErrBatchRange) {
			t.Fatalf("fixed batch %d: %v", b, err)
		}
	}
	cfg = base
	cfg.System = SystemAdaptDL
	cfg.FixedBatch = 128
	if _, err := Train(cfg); !errors.Is(err, ErrBatchRange) {
		t.Fatalf("adaptdl fixed batch: %v", err)
	}

	if _, err := Schedule(ScheduleConfig{
		PoolModels: []string{"V100", "V100"},
		Jobs:       []JobSpec{{ID: "j", Workload: "cifar10", GPUs: 1}},
		System:     "no-such-system",
	}); !errors.Is(err, ErrUnknownSystem) {
		t.Fatalf("schedule unknown system: %v", err)
	}
}

func TestTrainContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, kind := range Systems() {
		_, err := TrainContext(ctx, TrainConfig{
			Cluster:  ClusterConfig{Preset: "a"},
			Workload: "cifar10",
			System:   kind,
			Seed:     2,
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", kind, err)
		}
	}
}

func TestScheduleContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ScheduleContext(ctx, ScheduleConfig{
		PoolModels: []string{"V100", "V100"},
		Jobs:       []JobSpec{{ID: "j", Workload: "cifar10", GPUs: 2}},
		Seed:       2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTrainOnEpochStreams(t *testing.T) {
	var seen []EpochReport
	rep, err := Train(TrainConfig{
		Cluster:   ClusterConfig{Preset: "a"},
		Workload:  "cifar10",
		System:    SystemCannikin,
		Seed:      4,
		MaxEpochs: 8,
		OnEpoch: func(e EpochReport) error {
			seen = append(seen, e)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(rep.Epochs) {
		t.Fatalf("hook fired %d times for %d epochs", len(seen), len(rep.Epochs))
	}
	for i := range seen {
		if seen[i].Epoch != i {
			t.Fatalf("epoch %d reported at position %d", seen[i].Epoch, i)
		}
		a, _ := json.Marshal(seen[i])
		b, _ := json.Marshal(rep.Epochs[i])
		if string(a) != string(b) {
			t.Fatalf("epoch %d: streamed report differs from final report", i)
		}
	}

	boom := errors.New("boom")
	_, err = Train(TrainConfig{
		Cluster:   ClusterConfig{Preset: "a"},
		Workload:  "cifar10",
		System:    SystemHetPipe,
		Seed:      4,
		MaxEpochs: 8,
		OnEpoch: func(e EpochReport) error {
			if e.Epoch == 1 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("hook error not propagated: %v", err)
	}
}

// TestTrainDeterministic locks the determinism contract: the same seed must
// yield a byte-identical Report for every system, with and without chaos.
func TestTrainDeterministic(t *testing.T) {
	chaosCfg := ChaosConfig{
		Events: []ChaosEvent{{Epoch: 3, Node: 0, Kind: ChaosComputeShare, Value: 0.4}},
		Churn:  0.3,
	}
	for _, kind := range Systems() {
		for _, withChaos := range []bool{false, true} {
			cfg := TrainConfig{
				Cluster:   ClusterConfig{Preset: "a"},
				Workload:  "cifar10",
				System:    kind,
				Seed:      11,
				MaxEpochs: 10,
			}
			if withChaos {
				cfg.Chaos = chaosCfg
			}
			a, err := Train(cfg)
			if err != nil {
				t.Fatalf("%s chaos=%v: %v", kind, withChaos, err)
			}
			b, err := Train(cfg)
			if err != nil {
				t.Fatalf("%s chaos=%v rerun: %v", kind, withChaos, err)
			}
			ja, _ := json.Marshal(a)
			jb, _ := json.Marshal(b)
			if string(ja) != string(jb) {
				t.Fatalf("%s chaos=%v: same seed produced different reports", kind, withChaos)
			}
		}
	}
}

func TestTrainChaosAnnotations(t *testing.T) {
	rep, err := Train(TrainConfig{
		Cluster:   ClusterConfig{Preset: "a"},
		Workload:  "cifar10",
		System:    SystemCannikin,
		Seed:      6,
		MaxEpochs: 10,
		Chaos: ChaosConfig{Events: []ChaosEvent{
			{Epoch: 3, Node: 1, Kind: ChaosStraggler, Value: 0.5, Duration: 2},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) <= 5 {
		t.Fatalf("run ended after %d epochs", len(rep.Epochs))
	}
	hit := rep.Epochs[3].Events
	if len(hit) != 1 || hit[0].Kind != ChaosStraggler || hit[0].Node != 1 || hit[0].Revert {
		t.Fatalf("epoch 3 events = %v", hit)
	}
	rec := rep.Epochs[5].Events
	if len(rec) != 1 || !rec[0].Revert {
		t.Fatalf("epoch 5 events = %v (want straggler recovery)", rec)
	}
}

func TestTrainAuditAdvisory(t *testing.T) {
	rep, err := Train(TrainConfig{
		Cluster:   ClusterConfig{Preset: "a"},
		Workload:  "cifar10",
		System:    SystemCannikin,
		Seed:      11,
		MaxEpochs: 8,
		Audit:     AuditAdvisory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AuditedPlans == 0 {
		t.Fatal("no plans audited")
	}
	if rep.AuditViolations != 0 {
		t.Fatalf("healthy run reported %d audit violations", rep.AuditViolations)
	}
	for _, e := range rep.Epochs {
		if e.Audit == nil {
			t.Fatalf("epoch %d missing audit summary", e.Epoch)
		}
	}
}

func TestTrainAuditStrictCleanRun(t *testing.T) {
	rep, err := Train(TrainConfig{
		Cluster:   ClusterConfig{Preset: "a"},
		Workload:  "cifar10",
		System:    SystemCannikin,
		Seed:      11,
		MaxEpochs: 8,
		Audit:     AuditStrict,
		Chaos: ChaosConfig{Events: []ChaosEvent{
			{Epoch: 4, Node: 0, Kind: ChaosComputeShare, Value: 0.4},
		}},
	})
	if err != nil {
		t.Fatalf("strict audit failed a healthy chaos run: %v", err)
	}
	if rep.AuditViolations != 0 {
		t.Fatalf("%d violations", rep.AuditViolations)
	}
}

func TestTrainAuditErrors(t *testing.T) {
	cfg := TrainConfig{
		Cluster:  ClusterConfig{Preset: "a"},
		Workload: "cifar10",
		System:   SystemCannikin,
		Audit:    AuditLevel("bogus"),
	}
	if _, err := Train(cfg); !errors.Is(err, ErrAudit) {
		t.Fatalf("bogus audit level: %v", err)
	}
	cfg.Audit = AuditAdvisory
	cfg.System = SystemDDP
	if _, err := Train(cfg); !errors.Is(err, ErrAudit) {
		t.Fatalf("auditing a non-OptPerf system: %v", err)
	}
}
